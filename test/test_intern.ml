(* Tests for hash-consing (Intern) and the bucketed similarity-graph
   construction (Simgraph): id determinism and density, rehash, marshal-safe
   memo slots, domain-safety, and pairwise/bucketed builder equivalence over
   randomized omission schedules on the model engines. *)

open Layered_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Intern *)

let string_table ?size () =
  Intern.create ?size ~key:(fun s -> s) ~parts:(fun s -> [| ""; s |]) ()

let test_intern_dense_ids () =
  let t = string_table () in
  let ids = List.map (fun w -> (Intern.intern t w).Intern.id)
      [ "alpha"; "beta"; "gamma"; "beta"; "alpha"; "delta" ]
  in
  (match ids with
  | [ a; b; c; b'; a'; d ] ->
      check_int "repeat alpha" a a';
      check_int "repeat beta" b b';
      Alcotest.(check (list int)) "dense, first-seen order" [ 0; 1; 2; 3 ] [ a; b; c; d ]
  | _ -> Alcotest.fail "expected six metas");
  check_int "size counts distinct keys" 4 (Intern.size t)

let test_intern_rehash () =
  let t = string_table ~size:2 () in
  let metas = List.init 200 (fun i -> Intern.intern t (string_of_int i)) in
  check_int "all distinct survive rehash" 200 (Intern.size t);
  List.iteri
    (fun i m ->
      check_int "id stable across rehash" m.Intern.id
        (Intern.intern t (string_of_int i)).Intern.id)
    metas

let test_intern_meta_fields () =
  let t =
    Intern.create
      ~key:(fun (a, b) -> a ^ "|" ^ b)
      ~parts:(fun (a, b) -> [| ""; a; b |])
      ()
  in
  let m1 = Intern.intern t ("x", "y") in
  let m2 = Intern.intern t ("x", "z") in
  let m3 = Intern.intern t ("w", "y") in
  check "key preserved verbatim" true (String.equal m1.Intern.key "x|y");
  check_int "equal components share a part id" m1.Intern.parts.(1) m2.Intern.parts.(1);
  check_int "part ids are positional, not global" m1.Intern.parts.(2) m3.Intern.parts.(2);
  check "distinct components get distinct part ids" true
    (m1.Intern.parts.(2) <> m2.Intern.parts.(2))

(* Memo slots survive [Marshal]: the revived slot is foreign to the table,
   so the value transparently re-interns — to the same id, with no
   duplicate table entry (the checkpoint/resume path relies on this). *)
type boxed = { label : string; slot : Intern.slot }

let test_intern_memo_marshal () =
  let t =
    Intern.create ~key:(fun b -> b.label) ~parts:(fun b -> [| ""; b.label |]) ()
  in
  let x = { label = "persist-me"; slot = Intern.fresh_slot () } in
  let m = Intern.memo t x.slot x in
  let y : boxed = Marshal.from_string (Marshal.to_string x []) 0 in
  let m' = Intern.memo t y.slot y in
  check_int "same id after marshal round-trip" m.Intern.id m'.Intern.id;
  check_int "no duplicate entry" 1 (Intern.size t)

let test_intern_domains () =
  let t = string_table () in
  let words = List.init 64 (fun i -> "w" ^ string_of_int (i mod 16)) in
  let doms =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            List.map (fun w -> (Intern.intern t w).Intern.id) words))
  in
  let results = List.map Domain.join doms in
  check_int "distinct keys across domains" 16 (Intern.size t);
  match results with
  | r0 :: rest ->
      List.iter (fun r -> check "domains agree on every id" true (r = r0)) rest
  | [] -> Alcotest.fail "no domains"

(* ------------------------------------------------------------------ *)
(* Simgraph *)

let test_masked_equal () =
  check "equal except j" true (Simgraph.masked_equal [| 0; 1; 2 |] [| 0; 9; 2 |] 1);
  check "differs elsewhere too" false
    (Simgraph.masked_equal [| 0; 1; 2 |] [| 5; 9; 2 |] 1);
  check "identical arrays" true (Simgraph.masked_equal [| 0; 1; 2 |] [| 0; 1; 2 |] 2)

let edges_of g =
  List.concat_map
    (fun u ->
      List.filter_map (fun v -> if u < v then Some (u, v) else None) (Graph.neighbours g u))
    (List.init (Graph.size g) Fun.id)
  |> List.sort compare

let graphs_equal g h = Graph.size g = Graph.size h && edges_of g = edges_of h

module P = (val Layered_protocols.Sync_floodset.make ~t:1)
module E = Layered_sync.Engine.Make (P)
module SMP = Layered_async_mp.Synchronic.Make (P)

let dedup_by ident states =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun x ->
      let k = ident x in
      if Hashtbl.mem seen k then false else (Hashtbl.add seen k (); true))
    states

(* A pseudo-random walk: at each round pick one action out of the enabled
   set, steered by the QCheck-generated [picks] — a randomized omission
   (resp. slow-process) schedule per initial state. *)
let walk ~rounds ~picks ~actions ~apply x0 =
  let np = Array.length picks in
  let rec go x r salt acc =
    if r >= rounds then x :: acc
    else
      let acts = actions x in
      let a = List.nth acts (picks.((salt + r) mod np) mod List.length acts) in
      go (apply x a) (r + 1) (salt + 13) (x :: acc)
  in
  go x0 0 (Hashtbl.hash (picks, rounds)) []

let schedule_arb =
  QCheck.(
    triple (int_range 3 4) (int_range 0 2)
      (list_of_size (Gen.int_range 1 8) (int_bound 1000)))

let prop_sync_builders_agree =
  QCheck.Test.make ~name:"simgraph: bucketed = pairwise (sync omission schedules)"
    ~count:40 schedule_arb (fun (n, rounds, picks) ->
      let picks = Array.of_list (if picks = [] then [ 0 ] else picks) in
      let states =
        List.concat_map
          (walk ~rounds ~picks ~actions:(E.st_actions ~t:1)
             ~apply:(E.apply ~record_failures:true))
          (E.initial_states ~n ~values:[ Value.zero; Value.one ])
        |> dedup_by E.ident
      in
      let _, gp = E.similarity_graph ~builder:Simgraph.Pairwise states in
      let _, gb = E.similarity_graph ~builder:Simgraph.Bucketed states in
      graphs_equal gp gb)

let prop_smp_builders_agree =
  QCheck.Test.make
    ~name:"simgraph: bucketed = pairwise (synchronic-mp slow-process schedules)"
    ~count:20 schedule_arb (fun (n, rounds, picks) ->
      let n = min n 3 in
      let picks = Array.of_list (if picks = [] then [ 0 ] else picks) in
      let states =
        List.concat_map
          (walk ~rounds ~picks
             ~actions:(fun _ -> SMP.actions ~n)
             ~apply:SMP.apply)
          (SMP.initial_states ~n ~values:[ Value.zero; Value.one ])
        |> dedup_by SMP.ident
      in
      let _, gp = SMP.similarity_graph ~builder:Simgraph.Pairwise states in
      let _, gb = SMP.similarity_graph ~builder:Simgraph.Bucketed states in
      graphs_equal gp gb)

(* ------------------------------------------------------------------ *)
(* Engine-level interning invariants *)

let layer1 ~n =
  let initials = E.initial_states ~n ~values:[ Value.zero; Value.one ] in
  initials @ List.concat_map (E.st ~t:1) initials

let test_ident_iff_key () =
  let states = Array.of_list (layer1 ~n:3) in
  let m = Array.length states in
  for i = 0 to m - 1 do
    for j = i to m - 1 do
      let x = states.(i) and y = states.(j) in
      let by_key = String.equal (E.key x) (E.key y) in
      check "ident = key equality" true (E.ident x = E.ident y = by_key);
      check "equal = key equality" true (E.equal x y = by_key)
    done
  done

let test_agree_modulo_matches_similar () =
  let states = layer1 ~n:3 |> dedup_by E.ident in
  let _, g = E.similarity_graph states in
  let arr = Array.of_list states in
  Array.iteri
    (fun i x ->
      Array.iteri
        (fun j y ->
          if i < j then
            check "graph edge iff similar" true
              (List.mem j (Graph.neighbours g i) = E.similar x y))
        arr)
    arr

(* The valence cache must answer identically whether keyed by rebuilt
   canonical strings or by dense intern ids. *)
let test_valence_ident_agrees () =
  let spec = E.valence_spec ~succ:(E.st ~t:1) in
  let v_str = Valence.create spec in
  let v_int = Valence.create ~ident:E.ident spec in
  List.iter
    (fun x ->
      check "string-keyed and interned verdicts agree" true
        (Vset.equal (Valence.vals v_str ~depth:3 x) (Valence.vals v_int ~depth:3 x)))
    (E.initial_states ~n:3 ~values:[ Value.zero; Value.one ])

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "intern"
    [
      ( "intern",
        [
          Alcotest.test_case "dense ids" `Quick test_intern_dense_ids;
          Alcotest.test_case "rehash" `Quick test_intern_rehash;
          Alcotest.test_case "meta fields" `Quick test_intern_meta_fields;
          Alcotest.test_case "memo survives marshal" `Quick test_intern_memo_marshal;
          Alcotest.test_case "domain-safe" `Quick test_intern_domains;
        ] );
      ( "simgraph",
        [
          Alcotest.test_case "masked_equal" `Quick test_masked_equal;
          qt prop_sync_builders_agree;
          qt prop_smp_builders_agree;
        ] );
      ( "engine",
        [
          Alcotest.test_case "ident iff key" `Quick test_ident_iff_key;
          Alcotest.test_case "agree_modulo matches similar" `Quick
            test_agree_modulo_matches_similar;
          Alcotest.test_case "valence keying agrees" `Quick test_valence_ident_agrees;
        ] );
    ]
