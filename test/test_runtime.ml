(* Unit tests for layered_runtime: domain pool, parallel frontier
   exploration, instrumented counters. *)

open Layered_core
open Layered_runtime

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Pool *)

let test_parallel_map_order () =
  let xs = List.init 10_000 Fun.id in
  let f x = (x * x) - (3 * x) + 1 in
  let expect = List.map f xs in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          Alcotest.(check (list int))
            (Printf.sprintf "equals List.map at jobs=%d" jobs)
            expect (Pool.parallel_map pool f xs)))
    [ 1; 2; 4 ]

let test_parallel_map_edge_cases () =
  Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check (list int)) "empty" [] (Pool.parallel_map pool (fun x -> x) []);
      Alcotest.(check (list int)) "singleton" [ 9 ] (Pool.parallel_map pool (fun x -> x * x) [ 3 ]);
      (* fewer elements than jobs *)
      Alcotest.(check (list int)) "short list" [ 2; 4 ] (Pool.parallel_map pool (fun x -> 2 * x) [ 1; 2 ]));
  Alcotest.check_raises "jobs < 1 rejected" (Invalid_argument "Pool.create: jobs must be >= 1")
    (fun () -> ignore (Pool.create ~jobs:0 ()))

let test_parallel_iter () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let hits = Atomic.make 0 in
      Pool.parallel_iter pool (fun x -> ignore (Atomic.fetch_and_add hits x)) (List.init 100 Fun.id);
      check_int "iter visits everything" (99 * 100 / 2) (Atomic.get hits))

let test_parallel_map_exception () =
  Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.check_raises "exception propagates" (Failure "boom") (fun () ->
          ignore
            (Pool.parallel_map pool
               (fun x -> if x = 7_777 then failwith "boom" else x)
               (List.init 10_000 Fun.id)));
      (* the pool survives the exception and stays usable *)
      Alcotest.(check (list int)) "pool alive after exception" [ 1; 2; 3 ]
        (Pool.parallel_map pool (fun x -> x) [ 1; 2; 3 ]))

(* ------------------------------------------------------------------ *)
(* Frontier vs the serial Explore BFS *)

let frontier_agrees ~jobs ~name ~succ ~key ~depth x0 =
  Pool.with_pool ~jobs (fun pool ->
      let serial = Explore.reachable { Explore.succ; key } ~depth x0 in
      let par = (Frontier.reachable pool ~succ ~key ~depth x0).Budget.value in
      Alcotest.(check (list string))
        (Printf.sprintf "%s: reachable agrees at jobs=%d" name jobs)
        (List.map key serial) (List.map key par);
      check_int
        (Printf.sprintf "%s: count agrees at jobs=%d" name jobs)
        (Explore.count_reachable { Explore.succ; key } ~depth x0)
        (Frontier.count_reachable pool ~succ ~key ~depth x0).Budget.value)

let test_frontier_sync_floodset () =
  let module P = (val Layered_protocols.Sync_floodset.make ~t:1) in
  let module E = Layered_sync.Engine.Make (P) in
  let x0 = E.initial ~inputs:[| 0; 1; 1 |] in
  List.iter
    (fun jobs ->
      frontier_agrees ~jobs ~name:"S^t floodset (3,1)" ~succ:(E.st ~t:1) ~key:E.key
        ~depth:3 x0)
    [ 1; 2; 4 ]

let test_frontier_mobile () =
  let module P = (val Layered_protocols.Sync_floodset.make ~t:1) in
  let module E = Layered_sync.Engine.Make (P) in
  let x0 = E.initial ~inputs:[| 0; 1; 1 |] in
  List.iter
    (fun jobs ->
      frontier_agrees ~jobs ~name:"S1 mobile (3,1)"
        ~succ:(E.s1 ~record_failures:false) ~key:E.key ~depth:3 x0)
    [ 1; 2; 4 ]

let test_frontier_exists () =
  let module P = (val Layered_protocols.Sync_floodset.make ~t:1) in
  let module E = Layered_sync.Engine.Make (P) in
  let x0 = E.initial ~inputs:[| 0; 1; 1 |] in
  let succ = E.st ~t:1 in
  Pool.with_pool ~jobs:4 (fun pool ->
      check "terminal state reachable at depth 3" true
        (Frontier.exists_reachable pool ~succ ~key:E.key ~depth:3 ~pred:E.terminal x0)
          .Budget.value;
      check "none at depth 0" false
        (Frontier.exists_reachable pool ~succ ~key:E.key ~depth:0 ~pred:E.terminal x0)
          .Budget.value;
      check "agrees with Explore"
        (Explore.exists_reachable { Explore.succ; key = E.key } ~depth:2 ~pred:E.terminal x0)
        (Frontier.exists_reachable pool ~succ ~key:E.key ~depth:2 ~pred:E.terminal x0)
          .Budget.value)

(* Levels partition the reachable set by first-reached depth. *)
let test_frontier_levels () =
  let succ x = if x >= 16 then [] else [ (2 * x) mod 19; ((2 * x) + 1) mod 19 ] in
  let key = string_of_int in
  Pool.with_pool ~jobs:2 (fun pool ->
      let levels = (Frontier.levels pool ~succ ~key ~depth:6 1).Budget.value in
      let flat = List.concat levels in
      Alcotest.(check (list string))
        "concat levels = reachable"
        (List.map key (Explore.reachable { Explore.succ; key } ~depth:6 1))
        (List.map key flat);
      let sorted = List.sort_uniq compare flat in
      check_int "levels are disjoint" (List.length flat) (List.length sorted))

(* An exception in the successor function must come back to the caller
   without wedging the pool (satellite requirement (d)). *)
let test_frontier_exception () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let succ x = if x = 5 then failwith "bad succ" else if x < 40 then [ x + 1; x + 2 ] else [] in
      Alcotest.check_raises "succ exception propagates" (Failure "bad succ") (fun () ->
          ignore (Frontier.reachable pool ~succ ~key:string_of_int ~depth:10 0));
      (* same pool still works afterwards *)
      check_int "pool alive" 3
        (Frontier.count_reachable pool ~succ:(fun x -> if x < 2 then [ x + 1 ] else [])
           ~key:string_of_int ~depth:5 0)
          .Budget.value)

(* ------------------------------------------------------------------ *)
(* Shards: the frontier's dedup table under forced collisions.  With a
   single shard every key lands in one bucket behind one mutex — the
   worst case the propose/claim discipline must survive unchanged. *)

let test_shards_min_index_wins () =
  let t = Frontier.Shards.create ~shards:1 in
  List.iter (fun (k, i) -> Frontier.Shards.propose t k i)
    [ ("a", 5); ("b", 3); ("a", 2); ("a", 9); ("b", 7) ];
  check "losing candidate cannot claim a" false (Frontier.Shards.claim t "a" 5);
  check "losing candidate cannot claim b" false (Frontier.Shards.claim t "b" 7);
  check "minimum index claims a" true (Frontier.Shards.claim t "a" 2);
  check "minimum index claims b" true (Frontier.Shards.claim t "b" 3);
  (* claims are exclusive: even the winner cannot claim twice *)
  check "second claim of a refused" false (Frontier.Shards.claim t "a" 2);
  Alcotest.(check (list string)) "committed keys, sorted" [ "a"; "b" ]
    (Frontier.Shards.committed t)

let test_shards_committed_never_displaced () =
  let t = Frontier.Shards.create ~shards:1 in
  Frontier.Shards.commit t "k";
  (* a later level proposes the same key with an attractive low index *)
  Frontier.Shards.propose t "k" 0;
  check "no candidate can claim a committed key" false (Frontier.Shards.claim t "k" 0);
  Alcotest.(check (list string)) "still committed" [ "k" ]
    (Frontier.Shards.committed t)

(* The discipline is shard-count invariant: any interleaving of the same
   proposals yields the same winner, whether keys collide in one bucket
   or spread over many. *)
let test_shards_claim_determinism () =
  let keys = List.init 40 (fun i -> Printf.sprintf "k%d" (i mod 10)) in
  let run shards order =
    let t = Frontier.Shards.create ~shards in
    List.iter (fun (k, i) -> Frontier.Shards.propose t k i) order;
    List.filteri (fun i _ -> Frontier.Shards.claim t (List.nth keys i) i)
      (List.init (List.length keys) Fun.id)
    |> List.length
  in
  let indexed = List.mapi (fun i k -> (k, i)) keys in
  let forward = run 1 indexed and reverse = run 64 (List.rev indexed) in
  check_int "winner set independent of shards and proposal order" forward reverse;
  check_int "one winner per distinct key" 10 forward

(* ------------------------------------------------------------------ *)
(* Budgets *)

(* A deadline expiring mid-BFS yields [Truncated], and the delivered
   levels are exactly a prefix of the serial (unbudgeted) level
   sequence.  The sleeping successor makes truncation certain: the full
   graph costs > 200ms of mandatory sleep against a 50ms budget. *)
let test_budget_deadline_prefix () =
  let succ_pure x = if x >= 200 then [] else [ (2 * x) mod 211; ((2 * x) + 1) mod 211 ] in
  let succ_slow x =
    Unix.sleepf 0.001;
    succ_pure x
  in
  let key = string_of_int in
  let serial =
    Pool.with_pool ~jobs:1 (fun pool ->
        (Frontier.levels pool ~succ:succ_pure ~key ~depth:12 1).Budget.value)
  in
  Pool.with_pool ~jobs:2 (fun pool ->
      let b = Budget.create ~timeout_s:0.05 () in
      let o = Frontier.levels ~budget:b pool ~succ:succ_slow ~key ~depth:12 1 in
      (match o.Budget.status with
      | Budget.Truncated { Budget.reason = Budget.Deadline; _ } -> ()
      | Budget.Truncated _ -> Alcotest.fail "truncated for the wrong reason"
      | Budget.Complete -> Alcotest.fail "expected a Deadline truncation");
      let got = o.Budget.value in
      check "delivered fewer levels than the serial run" true
        (List.length got < List.length serial);
      List.iteri
        (fun i level ->
          Alcotest.(check (list string))
            (Printf.sprintf "level %d equals the serial level" i)
            (List.map key (List.nth serial i))
            (List.map key level))
        got)

(* The states cap is enforced at level boundaries against de-duplicated
   counts, so the truncation point — levels, reason, depth and the
   charged total — is identical for every job count. *)
let test_budget_max_states_deterministic () =
  let succ x = if x >= 500 then [] else [ ((3 * x) + 1) mod 601; (x + 7) mod 601 ] in
  let key = string_of_int in
  let run jobs =
    Pool.with_pool ~jobs (fun pool ->
        let b = Budget.create ~max_states:40 () in
        let o = Frontier.levels ~budget:b pool ~succ ~key ~depth:20 1 in
        (List.map (List.map key) o.Budget.value, o.Budget.status))
  in
  let ref_levels, ref_status = run 1 in
  (match ref_status with
  | Budget.Truncated { Budget.reason = Budget.States; _ } -> ()
  | _ -> Alcotest.fail "expected a States truncation");
  List.iter
    (fun jobs ->
      let levels, status = run jobs in
      Alcotest.(check (list (list string)))
        (Printf.sprintf "levels identical at jobs=%d" jobs)
        ref_levels levels;
      check (Printf.sprintf "status identical at jobs=%d" jobs) true
        (status = ref_status))
    [ 2; 4 ]

(* Cancelling the token mid-map surfaces [Exhausted Interrupted] through
   the usual settle-then-reraise path: no deadlock, and the pool stays
   usable. *)
let test_budget_cancel_parallel_map () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let b = Budget.create () in
      let interrupted = ref false in
      (try
         ignore
           (Pool.parallel_map ~budget:b pool
              (fun x ->
                if x = 100 then Budget.cancel b;
                x)
              (List.init 10_000 Fun.id))
       with Budget.Exhausted Budget.Interrupted -> interrupted := true);
      check "Exhausted Interrupted raised" true !interrupted;
      Alcotest.(check (list int))
        "pool alive after cancellation" [ 1; 2; 3 ]
        (Pool.parallel_map pool (fun x -> x) [ 1; 2; 3 ]))

(* A budget generous enough never to trip must be invisible: Complete
   status and results identical to the serial Explore BFS, at every job
   count. *)
let test_budget_complete_identical () =
  let module P = (val Layered_protocols.Sync_floodset.make ~t:1) in
  let module E = Layered_sync.Engine.Make (P) in
  let x0 = E.initial ~inputs:[| 0; 1; 1 |] in
  let succ = E.st ~t:1 and key = E.key in
  let serial = Explore.reachable { Explore.succ; key } ~depth:3 x0 in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let b =
            Budget.create ~timeout_s:3600.0 ~max_states:1_000_000
              ~max_memory_mb:65536 ()
          in
          let o = Frontier.reachable ~budget:b pool ~succ ~key ~depth:3 x0 in
          check
            (Printf.sprintf "complete at jobs=%d" jobs)
            true
            (o.Budget.status = Budget.Complete);
          Alcotest.(check (list string))
            (Printf.sprintf "identical to Explore at jobs=%d" jobs)
            (List.map key serial)
            (List.map key o.Budget.value)))
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Stats *)

let le_snapshot (a : Stats.snapshot) (b : Stats.snapshot) =
  a.Stats.states_expanded <= b.Stats.states_expanded
  && a.Stats.dedup_hits <= b.Stats.dedup_hits
  && a.Stats.valence_cache_hits <= b.Stats.valence_cache_hits
  && a.Stats.valence_cache_misses <= b.Stats.valence_cache_misses
  && a.Stats.tasks_executed <= b.Stats.tasks_executed

let is_zero (s : Stats.snapshot) =
  s.Stats.states_expanded = 0 && s.Stats.dedup_hits = 0
  && s.Stats.valence_cache_hits = 0 && s.Stats.valence_cache_misses = 0
  && s.Stats.tasks_executed = 0 && s.Stats.domains_utilised = 0

let test_stats_monotone_and_reset () =
  Stats.reset ();
  check "zero after reset" true (is_zero (Stats.snapshot ()));
  (* a diamond: 0 -> {1,2} -> 3, so the serial BFS both expands and dedups *)
  let succ x = if x = 0 then [ 1; 2 ] else if x < 3 then [ 3 ] else [] in
  let spec = { Explore.succ; key = string_of_int } in
  ignore (Explore.reachable spec ~depth:3 0);
  let s1 = Stats.snapshot () in
  check "explore counted expansions" true (s1.Stats.states_expanded >= 4);
  check "explore counted the dedup hit" true (s1.Stats.dedup_hits >= 1);
  (* a memoised valence engine: the second classify must hit the cache *)
  let vspec =
    {
      Valence.succ;
      key = string_of_int;
      decided = (fun x -> if x = 3 then Vset.singleton 1 else Vset.empty);
      terminal = (fun x -> x = 3);
    }
  in
  let v = Valence.create vspec in
  ignore (Valence.classify v ~depth:3 0);
  ignore (Valence.classify v ~depth:3 0);
  let s2 = Stats.snapshot () in
  check "valence misses counted" true (s2.Stats.valence_cache_misses >= 1);
  check "valence hits counted" true (s2.Stats.valence_cache_hits >= 1);
  check "counters are monotone" true (le_snapshot s1 s2);
  Pool.with_pool ~jobs:2 (fun pool ->
      ignore (Pool.parallel_map pool (fun x -> x) (List.init 64 Fun.id)));
  let s3 = Stats.snapshot () in
  check "tasks counted" true (s3.Stats.tasks_executed > s2.Stats.tasks_executed);
  check "monotone again" true (le_snapshot s2 s3);
  check "parallel run utilised >1 domain" true (s3.Stats.domains_utilised > 1);
  Stats.reset ();
  check "zero after final reset" true (is_zero (Stats.snapshot ()))

(* ------------------------------------------------------------------ *)
(* Memory watermarks: the hard cap trips sticky (after spending one
   compaction), the soft watermark relieves, and a tripped budget never
   memoises cut valence nodes. *)

(* ~16 MB of live unboxed ints: compaction cannot shrink a live array,
   so an 8 MB cap must trip — and stay tripped — however often it is
   probed afterwards. *)
let test_memory_hard_trip_sticky () =
  let b = Budget.create ~max_memory_mb:8 () in
  let ballast = Array.init (2 * 1024 * 1024) Fun.id in
  let before = (Stats.snapshot ()).Stats.gc_compactions in
  let seen = ref None in
  (* the watermark is sampled every 64th probe *)
  for _ = 1 to 256 do
    match Budget.exceeded b with
    | Some r when !seen = None -> seen := Some r
    | _ -> ()
  done;
  check "tripped on Memory" true (!seen = Some Budget.Memory);
  check "trip is sticky" true (Budget.tripped b = Some Budget.Memory);
  check "still exceeded on re-probe" true
    (Budget.exceeded b = Some Budget.Memory);
  let after = (Stats.snapshot ()).Stats.gc_compactions in
  check_int "exactly one compaction spent before tripping" 1 (after - before);
  (* a fresh generous budget on the same heap must not trip: the cap,
     not the probe, decides *)
  let generous = Budget.create ~max_memory_mb:65536 () in
  for _ = 1 to 256 do
    check "generous cap never trips" true (Budget.exceeded generous = None)
  done;
  ignore (Sys.opaque_identity ballast)

let test_memory_soft_relieve () =
  let b = Budget.create ~max_memory_mb:65536 ~soft_memory_mb:8 () in
  let ballast = Array.init (2 * 1024 * 1024) Fun.id in
  let before = Stats.snapshot () in
  let squeezed = ref false in
  for _ = 1 to 256 do
    if Budget.relieve b then squeezed := true
  done;
  let d = Stats.diff (Stats.snapshot ()) before in
  check "soft pressure reported" true !squeezed;
  check "soft events counted" true (d.Stats.mem_soft_events > 0);
  check_int "the one compaction spent exactly once" 1 d.Stats.gc_compactions;
  check "hard cap untouched" true (Budget.tripped b = None);
  check "pressure reads Soft" true (Budget.pressure b = `Soft);
  ignore (Sys.opaque_identity ballast)

let test_budget_create_validation () =
  Alcotest.check_raises "soft_memory_mb must be >= 1"
    (Invalid_argument "Budget.create: soft_memory_mb must be >= 1") (fun () ->
      ignore (Budget.create ~soft_memory_mb:0 ()))

(* A tripped budget degrades valence outcomes to incomplete and must
   not memoise them: a later untripped engine would otherwise inherit
   Unknown verdicts for nodes the budget — not the depth — cut. *)
let test_valence_no_memo_when_tripped () =
  let open Layered_core in
  let vspec =
    {
      Valence.succ = (fun x -> if x < 3 then [ x + 1 ] else []);
      key = string_of_int;
      decided = (fun x -> if x = 3 then Vset.singleton 1 else Vset.empty);
      terminal = (fun x -> x = 3);
    }
  in
  let b = Budget.create () in
  Budget.cancel b;
  check "budget is tripped" true (Budget.exceeded b <> None);
  let v = Valence.create ~budget:b vspec in
  let o = Valence.outcome v ~depth:5 0 in
  check "cut outcome is incomplete" true (not o.Valence.complete);
  check_int "nothing memoised under a tripped budget" 0 (Valence.cache_entries v);
  (* the same engine, budget lifted, classifies from scratch: complete *)
  Valence.set_budget v None;
  let o2 = Valence.outcome v ~depth:5 0 in
  check "untripped walk is complete" true o2.Valence.complete;
  check "cache filled once the budget no longer cuts" true
    (Valence.cache_entries v > 0)

(* ------------------------------------------------------------------ *)
(* Crash containment (chaos regression) *)

(* A crash raised in a worker domain around its task — the injected
   [Worker_raise] fault — must surface from [parallel_map] instead of
   wedging it, must not cost the slot, and the dead domain must be
   respawned on the next dispatch.  Three maps at jobs=2 dispatch three
   worker tasks, covering every seed-derived firing index. *)
let test_worker_raise_contained () =
  let before = (Stats.snapshot ()).Stats.workers_respawned in
  Fault.arm ~seed:2026 Fault.Worker_raise;
  Fun.protect ~finally:Fault.disarm (fun () ->
      Pool.with_pool ~jobs:2 (fun pool ->
          let xs = List.init 64 Fun.id in
          let expect = List.map (fun x -> x * 7) xs in
          let raised = ref 0 in
          for _ = 1 to 3 do
            match Pool.parallel_map pool (fun x -> x * 7) xs with
            | got -> check "clean pass computes the right list" true (got = expect)
            | exception Fault.Injected Fault.Worker_raise -> incr raised
          done;
          check_int "the injected crash surfaced exactly once" 1 !raised;
          check_int "the fault fired exactly once" 1 (Fault.fired ());
          Alcotest.(check (list int)) "pool usable after the crash" [ 2; 3; 4 ]
            (Pool.parallel_map pool (fun x -> x + 1) [ 1; 2; 3 ])));
  let after = (Stats.snapshot ()).Stats.workers_respawned in
  check "the dead worker domain was respawned" true (after > before)

(* Budgeted [with_pool] installs a SIGINT-to-cancel handler; nested and
   repeated uses must restore the caller's handler on the way out, not
   each other's. *)
let test_with_pool_sigint_restore () =
  let prev = Sys.signal Sys.sigint Sys.Signal_ignore in
  Pool.with_pool ~jobs:2 ~budget:(Budget.create ()) (fun _ ->
      Pool.with_pool ~jobs:2 ~budget:(Budget.create ()) (fun _ -> ()));
  Pool.with_pool ~jobs:2 ~budget:(Budget.create ()) (fun _ -> ());
  let observed = Sys.signal Sys.sigint prev in
  check "handler restored after nested and repeated budgeted with_pool" true
    (observed = Sys.Signal_ignore)

let () =
  Alcotest.run "layered_runtime"
    [
      ( "pool",
        [
          Alcotest.test_case "parallel_map order" `Quick test_parallel_map_order;
          Alcotest.test_case "edge cases" `Quick test_parallel_map_edge_cases;
          Alcotest.test_case "parallel_iter" `Quick test_parallel_iter;
          Alcotest.test_case "exception propagation" `Quick test_parallel_map_exception;
        ] );
      ( "frontier",
        [
          Alcotest.test_case "sync floodset" `Quick test_frontier_sync_floodset;
          Alcotest.test_case "mobile substrate" `Quick test_frontier_mobile;
          Alcotest.test_case "exists_reachable" `Quick test_frontier_exists;
          Alcotest.test_case "levels partition" `Quick test_frontier_levels;
          Alcotest.test_case "exception propagation" `Quick test_frontier_exception;
        ] );
      ( "shards",
        [
          Alcotest.test_case "min index wins under collisions" `Quick
            test_shards_min_index_wins;
          Alcotest.test_case "committed keys never displaced" `Quick
            test_shards_committed_never_displaced;
          Alcotest.test_case "claim determinism" `Quick test_shards_claim_determinism;
        ] );
      ( "budget",
        [
          Alcotest.test_case "deadline truncates to a serial prefix" `Quick
            test_budget_deadline_prefix;
          Alcotest.test_case "max-states deterministic across jobs" `Quick
            test_budget_max_states_deterministic;
          Alcotest.test_case "cancellation drains parallel_map" `Quick
            test_budget_cancel_parallel_map;
          Alcotest.test_case "generous budget is invisible" `Quick
            test_budget_complete_identical;
          Alcotest.test_case "memory hard trip is sticky" `Quick
            test_memory_hard_trip_sticky;
          Alcotest.test_case "soft watermark relieves once" `Quick
            test_memory_soft_relieve;
          Alcotest.test_case "create validation" `Quick
            test_budget_create_validation;
          Alcotest.test_case "no memoisation of cut valence nodes" `Quick
            test_valence_no_memo_when_tripped;
        ] );
      ( "stats",
        [ Alcotest.test_case "monotone and reset" `Quick test_stats_monotone_and_reset ] );
      ( "containment",
        [
          Alcotest.test_case "worker crash contained and respawned" `Quick
            test_worker_raise_contained;
          Alcotest.test_case "SIGINT handler restored" `Quick
            test_with_pool_sigint_restore;
        ] );
    ]
