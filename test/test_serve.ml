(* Tests for the serve subsystem: the JSON codec, the wire protocol
   (every variant round-trips; every rejection path answers with the
   right structured error), line framing, the result cache and its
   stats counters, admission control, dispatcher containment, and an
   end-to-end in-process daemon over a real Unix socket. *)

open Layered_serve
module Stats = Layered_runtime.Stats
module Fault = Layered_runtime.Fault

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Jsonx *)

let roundtrip j = Jsonx.of_string (Jsonx.to_string j)

let test_jsonx_roundtrip () =
  let samples =
    [
      Jsonx.Null;
      Jsonx.Bool true;
      Jsonx.Bool false;
      Jsonx.Int 0;
      Jsonx.Int (-42);
      Jsonx.Int max_int;
      Jsonx.String "";
      Jsonx.String "plain";
      Jsonx.String "quotes \" backslash \\ newline \n tab \t ctrl \001";
      Jsonx.List [];
      Jsonx.List [ Jsonx.Int 1; Jsonx.String "two"; Jsonx.Null ];
      Jsonx.Obj [];
      Jsonx.Obj
        [
          ("a", Jsonx.Int 1);
          ("nested", Jsonx.Obj [ ("l", Jsonx.List [ Jsonx.Bool false ]) ]);
        ];
    ]
  in
  List.iter
    (fun j ->
      match roundtrip j with
      | Ok j' -> check (Jsonx.to_string j ^ " roundtrips") true (j = j')
      | Error e -> Alcotest.fail (Jsonx.to_string j ^ ": " ^ e))
    samples

let test_jsonx_rejects () =
  let bad =
    [
      "";
      "{";
      "}";
      "{\"a\":}";
      "[1,]";
      "nul";
      "\"unterminated";
      "\"bad \\q escape\"";
      "01a";
      "{\"a\":1} trailing";
      "{\"a\" 1}";
      "\"raw \n newline\"";
    ]
  in
  List.iter
    (fun s ->
      match Jsonx.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted malformed %S" s))
    bad

(* \u escapes must be exactly four hex digits; int_of_string-style
   OCaml literal syntax (underscores, 0x prefixes) is not JSON *)
let test_jsonx_unicode_escape () =
  (match Jsonx.of_string "\"\\u012f\"" with
  | Ok (Jsonx.String s) -> check_str "U+012F decodes to UTF-8" "\xc4\xaf" s
  | _ -> Alcotest.fail "valid \\u escape rejected");
  (match Jsonx.of_string "\"\\u001F\"" with
  | Ok (Jsonx.String s) -> check_str "upper-case hex accepted" "\x1f" s
  | _ -> Alcotest.fail "upper-case \\u escape rejected");
  List.iter
    (fun s ->
      match Jsonx.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted malformed %S" s))
    [ "\"\\u1_2f\""; "\"\\u12g4\""; "\"\\u 123\""; "\"\\u0x12\""; "\"\\u12\"" ]

let test_jsonx_depth_cap () =
  let deep n = String.concat "" (List.init n (fun _ -> "[")) in
  let ok_depth = String.concat "" (List.init 10 (fun _ -> "[")) ^ "1"
                 ^ String.concat "" (List.init 10 (fun _ -> "]")) in
  check "moderate nesting accepted" true (Result.is_ok (Jsonx.of_string ok_depth));
  check "hostile nesting rejected" true
    (Result.is_error (Jsonx.of_string (deep 1000)))

(* ------------------------------------------------------------------ *)
(* Protocol: request round-trips *)

let all_requests =
  [
    Protocol.Classify_valence { model = "sync"; n = 3; t = 1; depth = 3 };
    Protocol.Sweep { model = "iis"; n = 3; t = 1; depth = 2 };
    Protocol.Run_experiment { id = "E1" };
    Protocol.Stats_query;
    Protocol.Shutdown;
  ]

let test_request_roundtrip () =
  List.iter
    (fun req ->
      (* with an id *)
      (match Protocol.decode_request (Protocol.encode_request ~id:7 req) with
      | Ok (Some 7, req') -> check "request roundtrips" true (req = req')
      | Ok _ -> Alcotest.fail "id lost in roundtrip"
      | Error (_, _, m) -> Alcotest.fail m);
      (* and without *)
      match Protocol.decode_request (Protocol.encode_request req) with
      | Ok (None, req') -> check "id-less request roundtrips" true (req = req')
      | Ok _ -> Alcotest.fail "phantom id appeared"
      | Error (_, _, m) -> Alcotest.fail m)
    all_requests

let all_responses =
  [
    Protocol.Resp_ok { id = Some 1; exit_code = 0; output = "line one\nline two\n" };
    Protocol.Resp_ok { id = None; exit_code = 3; output = "" };
    Protocol.Resp_error
      { id = Some 2; code = Protocol.Parse; message = "malformed JSON: oops" };
    Protocol.Resp_error
      { id = None; code = Protocol.Unknown_experiment; message = "no E99" };
    Protocol.Resp_error { id = Some 3; code = Protocol.Internal; message = "boom" };
    Protocol.Resp_overloaded
      { id = Some 4; reason = `Queue; retry_after_s = Some 0.25 };
    Protocol.Resp_overloaded { id = None; reason = `Memory; retry_after_s = None };
  ]

let test_response_roundtrip () =
  List.iter
    (fun resp ->
      let line = Protocol.encode_response resp in
      check "single line" false (String.contains line '\n');
      match Protocol.decode_response line with
      | Ok resp' -> check (line ^ " roundtrips") true (resp = resp')
      | Error e -> Alcotest.fail (line ^ ": " ^ e))
    all_responses

(* Every rejection path answers with the documented error code, and
   carries the request id whenever the line parsed far enough to have
   one. *)
let expect_error ?id code line =
  match Protocol.decode_request line with
  | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" line)
  | Error (got_id, got_code, _) ->
      check_str
        (Printf.sprintf "%S -> %s" line (Protocol.error_code_name code))
        (Protocol.error_code_name code)
        (Protocol.error_code_name got_code);
      check "rejection echoes the id" true (got_id = id)

let test_request_rejections () =
  expect_error Protocol.Parse "not json at all";
  expect_error Protocol.Parse "[1,2,3]";
  expect_error Protocol.Parse "{\"op\":\"stats\"} {\"op\":\"stats\"}";
  expect_error ~id:1 Protocol.Bad_request "{\"id\":1}";
  expect_error ~id:1 Protocol.Bad_request "{\"id\":1,\"op\":\"frobnicate\"}";
  expect_error Protocol.Bad_request "{\"op\":7}";
  expect_error Protocol.Bad_request "{\"id\":\"one\",\"op\":\"stats\"}";
  expect_error ~id:2 Protocol.Bad_request
    "{\"id\":2,\"op\":\"classify-valence\",\"model\":\"sync\",\"n\":3,\"t\":1}";
  expect_error ~id:2 Protocol.Bad_request
    "{\"id\":2,\"op\":\"classify-valence\",\"model\":\"sync\",\"n\":\"three\",\"t\":1,\"depth\":3}";
  expect_error ~id:3 Protocol.Unknown_model
    "{\"id\":3,\"op\":\"sweep\",\"model\":\"quantum\",\"n\":3,\"t\":1,\"depth\":2}";
  expect_error ~id:4 Protocol.Unknown_experiment
    "{\"id\":4,\"op\":\"run-experiment\",\"experiment\":\"E99\"}";
  (* the CLI's lower bounds *)
  expect_error ~id:5 Protocol.Out_of_range
    "{\"id\":5,\"op\":\"sweep\",\"model\":\"sync\",\"n\":0,\"t\":1,\"depth\":2}";
  expect_error ~id:5 Protocol.Out_of_range
    "{\"id\":5,\"op\":\"sweep\",\"model\":\"sync\",\"n\":3,\"t\":-1,\"depth\":2}";
  expect_error ~id:5 Protocol.Out_of_range
    "{\"id\":5,\"op\":\"sweep\",\"model\":\"sync\",\"n\":3,\"t\":1,\"depth\":-1}";
  (* the serve-side upper caps *)
  expect_error ~id:6 Protocol.Out_of_range
    (Printf.sprintf
       "{\"id\":6,\"op\":\"classify-valence\",\"model\":\"sync\",\"n\":%d,\"t\":1,\"depth\":2}"
       (Protocol.max_n + 1));
  expect_error ~id:6 Protocol.Out_of_range
    (Printf.sprintf
       "{\"id\":6,\"op\":\"classify-valence\",\"model\":\"sync\",\"n\":3,\"t\":%d,\"depth\":2}"
       (Protocol.max_t + 1));
  expect_error ~id:6 Protocol.Out_of_range
    (Printf.sprintf
       "{\"id\":6,\"op\":\"classify-valence\",\"model\":\"sync\",\"n\":3,\"t\":1,\"depth\":%d}"
       (Protocol.max_depth + 1))

(* Experiment lookup is case-insensitive in the registry; the decoded
   request carries the canonical id. *)
let test_request_canonical_experiment () =
  match Protocol.decode_request "{\"op\":\"run-experiment\",\"experiment\":\"e1\"}" with
  | Ok (None, Protocol.Run_experiment { id }) -> check_str "canonical id" "E1" id
  | _ -> Alcotest.fail "lower-case experiment id rejected"

let test_cache_key () =
  check "stats never cached" true (Protocol.cache_key Protocol.Stats_query = None);
  check "shutdown never cached" true (Protocol.cache_key Protocol.Shutdown = None);
  let k1 =
    Protocol.cache_key
      (Protocol.Classify_valence { model = "sync"; n = 3; t = 1; depth = 3 })
  in
  let k2 =
    Protocol.cache_key
      (Protocol.Classify_valence { model = "sync"; n = 3; t = 1; depth = 4 })
  in
  check "compute requests are keyed" true (k1 <> None);
  check "distinct params, distinct keys" true (k1 <> k2)

(* ------------------------------------------------------------------ *)
(* Session framing *)

let test_framing_partial_lines () =
  let s = Session.create () in
  let lines, ov = Session.feed s "{\"op\":\"st" in
  check "no line yet" true (lines = [] && not ov);
  let lines, ov = Session.feed s "ats\"}\n{\"op\":" in
  check "first line complete" true (lines = [ "{\"op\":\"stats\"}" ] && not ov);
  let lines, ov = Session.feed s "\"shutdown\"}\n" in
  check "second line complete" true (lines = [ "{\"op\":\"shutdown\"}" ] && not ov)

let test_framing_multi_per_read () =
  let s = Session.create () in
  let lines, ov = Session.feed s "one\ntwo\r\nthree\nfour" in
  check "three lines, CR stripped" true
    (lines = [ "one"; "two"; "three" ] && not ov);
  check_int "residue buffered" 4 (Session.pending_bytes s);
  let lines, ov = Session.feed s "\n" in
  check "residue completes" true (lines = [ "four" ] && not ov)

let test_framing_oversized () =
  let s = Session.create () in
  let big = String.make (Protocol.max_line_bytes + 1) 'x' in
  let lines, ov = Session.feed s ("ok\n" ^ big ^ "\n") in
  check "lines before the overflow still delivered" true (lines = [ "ok" ]);
  check "overflow flagged" true ov;
  let lines, ov = Session.feed s "more\n" in
  check "overflowed session yields nothing" true (lines = [] && ov);
  (* an unterminated over-long residue also overflows *)
  let s2 = Session.create () in
  let _, ov = Session.feed s2 big in
  check "unterminated oversized residue overflows" true ov

(* the client half frames responses with a larger cap: a response line
   longer than the request limit must come through intact *)
let test_framing_custom_cap () =
  let s = Session.create ~max_line_bytes:max_int () in
  let big = String.make (Protocol.max_line_bytes * 2) 'y' in
  let lines, ov = Session.feed s (big ^ "\n") in
  check "big response line delivered" true (lines = [ big ] && not ov)

(* ------------------------------------------------------------------ *)
(* Result cache + stats counters *)

let test_cache_counters () =
  Stats.reset ();
  let c = Cache.create ~max_entries:4 () in
  check "miss on empty" true (Cache.find c "k" = None);
  Cache.add c "k" { Cache.exit_code = 0; output = "payload" };
  (match Cache.find c "k" with
  | Some { Cache.exit_code = 0; output = "payload" } -> ()
  | _ -> Alcotest.fail "hit did not replay the exact entry");
  let s = Stats.snapshot () in
  check_int "one hit counted" 1 s.Stats.result_cache_hits;
  check_int "one miss counted" 1 s.Stats.result_cache_misses;
  (* reset-on-full keeps the table bounded *)
  List.iter
    (fun i ->
      Cache.add c (string_of_int i) { Cache.exit_code = 0; output = "" })
    [ 1; 2; 3; 4; 5 ];
  check "bounded" true (Cache.entries c <= 4)

let test_stats_pp_mentions_result_cache () =
  Stats.reset ();
  Stats.record_result_cache ~hit:true;
  Stats.record_result_cache ~hit:false;
  let rendered = Format.asprintf "%a" Stats.pp (Stats.snapshot ()) in
  check "pp prints result cache lines" true
    (let has needle =
       let nl = String.length needle and l = String.length rendered in
       let rec go i = i + nl <= l && (String.sub rendered i nl = needle || go (i + 1)) in
       go 0
     in
     has "result cache hits" && has "result cache misses")

(* ------------------------------------------------------------------ *)
(* Admission *)

let test_admission () =
  let cfg =
    {
      Admission.queue_cap = 2;
      max_heap_mb = 1_000_000;
      request_timeout_s = 5.;
      per_client_cap = 4;
    }
  in
  (match Admission.decide cfg ~pending:0 ~client_pending:0 with
  | Admission.Admit _ -> ()
  | Admission.Shed _ -> Alcotest.fail "idle daemon shed a request");
  (match Admission.decide cfg ~pending:3 ~client_pending:0 with
  | Admission.Shed { reason = `Queue; retry_after_s } ->
      check "queue shed carries a positive retry hint" true (retry_after_s > 0.)
  | _ -> Alcotest.fail "queue depth over cap not shed");
  match
    Admission.decide
      { cfg with Admission.max_heap_mb = 0 (* watermark below any live heap *) }
      ~pending:0 ~client_pending:0
  with
  | Admission.Shed { reason = `Memory; retry_after_s } ->
      check "memory shed carries a positive retry hint" true (retry_after_s > 0.)
  | _ -> Alcotest.fail "heap over watermark not shed"

let test_admission_per_client_cap () =
  let cfg =
    {
      Admission.queue_cap = 64;
      max_heap_mb = 1_000_000;
      request_timeout_s = 0.;
      per_client_cap = 2;
    }
  in
  (match Admission.decide cfg ~pending:0 ~client_pending:1 with
  | Admission.Admit _ -> ()
  | Admission.Shed _ -> Alcotest.fail "client under its cap shed");
  (match Admission.decide cfg ~pending:0 ~client_pending:2 with
  | Admission.Shed { reason = `Client; retry_after_s } ->
      check "per-client shed carries a positive retry hint" true
        (retry_after_s > 0.)
  | _ -> Alcotest.fail "client at its cap not shed");
  (* the per-client gate is checked before the global queue gate *)
  (match Admission.decide cfg ~pending:1_000 ~client_pending:2 with
  | Admission.Shed { reason = `Client; _ } -> ()
  | _ -> Alcotest.fail "per-client shed not checked before queue shed");
  (* 0 disables the cap *)
  match
    Admission.decide
      { cfg with Admission.per_client_cap = 0 }
      ~pending:0 ~client_pending:10_000
  with
  | Admission.Admit _ -> ()
  | Admission.Shed _ -> Alcotest.fail "disabled per-client cap still shed"

(* The backlog's determinism obligations: earliest deadline first,
   strict arrival order among equal deadlines — so which request runs
   next, and which is shed first, is a pure function of the admission
   sequence. *)
let test_backlog_order () =
  let b = Admission.Backlog.create () in
  Admission.Backlog.push b ~client:1 ~deadline:infinity "a";
  Admission.Backlog.push b ~client:2 ~deadline:infinity "b";
  Admission.Backlog.push b ~client:1 ~deadline:1. "c";
  Admission.Backlog.push b ~client:3 ~deadline:infinity "d";
  Admission.Backlog.push b ~client:2 ~deadline:1. "e";
  check_int "five queued" 5 (Admission.Backlog.length b);
  let drained = List.init 5 (fun _ -> Admission.Backlog.pop b) in
  check "deadlines first, FIFO among equals" true
    ([ Some "c"; Some "e"; Some "a"; Some "b"; Some "d" ] = drained);
  check "drained empty" true (Admission.Backlog.pop b = None)

let test_backlog_fair_share () =
  let b = Admission.Backlog.create () in
  List.iter
    (fun (client, x) -> Admission.Backlog.push b ~client ~deadline:infinity x)
    [
      (1, "a1"); (1, "a2"); (1, "a3");
      (2, "b1"); (2, "b2"); (2, "b3");
      (3, "c1");
    ];
  check_int "depth of client 1" 3 (Admission.Backlog.depth_of b ~client:1);
  (* depth tie (3 vs 3) breaks toward the smaller client id; the victim
     loses its NEWEST entry *)
  (match Admission.Backlog.evict_newest_of_deepest b ~spare:9 ~deeper_than:0 with
  | Some (1, "a3") -> ()
  | _ -> Alcotest.fail "tie not broken toward the smaller client id");
  (* client 2 (3 entries) is now strictly deepest *)
  (match Admission.Backlog.evict_newest_of_deepest b ~spare:9 ~deeper_than:0 with
  | Some (2, "b3") -> ()
  | _ -> Alcotest.fail "deepest client not chosen after the first eviction");
  (* the spare client is never the victim, even when deepest-tied *)
  (match Admission.Backlog.evict_newest_of_deepest b ~spare:1 ~deeper_than:0 with
  | Some (2, "b2") -> ()
  | _ -> Alcotest.fail "spare client was not spared");
  (* deeper_than: no client deeper than 2 remains *)
  (match Admission.Backlog.evict_newest_of_deepest b ~spare:9 ~deeper_than:2 with
  | None -> ()
  | Some _ -> Alcotest.fail "evicted a client no deeper than the threshold");
  (* a dead client's entries leave in (deadline, seq) order *)
  check "remove_client returns in order" true
    ([ "a1"; "a2" ] = Admission.Backlog.remove_client b ~client:1);
  check_int "removed client has no depth" 0
    (Admission.Backlog.depth_of b ~client:1);
  check "remaining pop order" true
    ([ Some "b1"; Some "c1"; None ]
    = List.init 3 (fun _ -> Admission.Backlog.pop b))

(* ------------------------------------------------------------------ *)
(* Dispatcher: byte-identity with the renderers, containment, caching *)

let with_ctx f =
  Layered_runtime.Pool.with_pool ~jobs:1 (fun pool ->
      f
        (Dispatch.create_ctx ~pool
           ~admission:
             {
               Admission.queue_cap = 64;
               max_heap_mb = 1_000_000;
               request_timeout_s = 0.;
               per_client_cap = 0;
             }
           ()))

let classify_line ~id = Protocol.encode_request ~id
    (Protocol.Classify_valence { model = "sync"; n = 3; t = 1; depth = 3 })

let test_dispatch_matches_renderer () =
  with_ctx (fun ctx ->
      match Dispatch.handle ctx ~pending:0 (classify_line ~id:1) with
      | Protocol.Resp_ok { id = Some 1; exit_code; output } ->
          let ref_code, ref_out =
            Dispatch.classify_output ~model:"sync" ~n:3 ~t:1 ~depth:3 ()
          in
          check_int "exit code" ref_code exit_code;
          check_str "output bytes" ref_out output
      | _ -> Alcotest.fail "classify did not answer ok")

let test_dispatch_cache_replay () =
  with_ctx (fun ctx ->
      Stats.reset ();
      let first = Dispatch.handle ctx ~pending:0 (classify_line ~id:1) in
      let second = Dispatch.handle ctx ~pending:0 (classify_line ~id:1) in
      check "replay is byte-identical" true (first = second);
      let s = Stats.snapshot () in
      check_int "second answer came from the cache" 1 s.Stats.result_cache_hits)

let test_dispatch_containment () =
  with_ctx (fun ctx ->
      (* the armed handler fault fires within the first three computes;
         the dispatcher must answer an internal error, then keep serving *)
      Fault.arm ~seed:7 Fault.Serve_handler_raise;
      let responses =
        Fun.protect ~finally:Fault.disarm (fun () ->
            List.map
              (fun depth ->
                Dispatch.handle ctx ~pending:0
                  (Protocol.encode_request ~id:depth
                     (Protocol.Classify_valence
                        { model = "sync"; n = 3; t = 1; depth })))
              [ 1; 2; 3 ])
      in
      check_int "the fault fired" 1 (Fault.fired ());
      let internals =
        List.length
          (List.filter
             (function
               | Protocol.Resp_error { code = Protocol.Internal; _ } -> true
               | _ -> false)
             responses)
      in
      check_int "exactly one request poisoned" 1 internals;
      match Dispatch.handle ctx ~pending:0 (classify_line ~id:9) with
      | Protocol.Resp_ok _ -> ()
      | _ -> Alcotest.fail "dispatcher dead after a contained raise")

let test_dispatch_shed () =
  with_ctx (fun ctx ->
      (match Dispatch.handle ctx ~pending:1000 (classify_line ~id:1) with
      | Protocol.Resp_overloaded
          { id = Some 1; reason = `Queue; retry_after_s = Some s } ->
          check "shed response carries the retry hint" true (s > 0.)
      | _ -> Alcotest.fail "queue overload not shed");
      match
        Dispatch.handle ctx ~pending:1000
          (Protocol.encode_request Protocol.Stats_query)
      with
      | Protocol.Resp_ok _ -> ()
      | _ -> Alcotest.fail "stats must bypass admission")

(* ------------------------------------------------------------------ *)
(* End to end: a real daemon on a real socket *)

let with_daemon ?(tweak = Fun.id) tag f =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "lsrv-%s-%d.sock" tag (Unix.getpid ()))
  in
  let cfg =
    tweak
      {
        (Server.default_config ~socket_path:path) with
        request_timeout_s = 0.;
        install_signals = false;
      }
  in
  let dom = Domain.spawn (fun () -> Server.run cfg) in
  let rec wait n =
    if Sys.file_exists path then ()
    else if n = 0 then Alcotest.fail "server socket never appeared"
    else (Unix.sleepf 0.05; wait (n - 1))
  in
  wait 100;
  f path;
  check_int "clean exit code" 0 (Domain.join dom);
  check "socket unlinked" false (Sys.file_exists path)

let test_end_to_end () =
  with_daemon "e2e" (fun path ->
  (match Client.connect path with
  | Error e -> Alcotest.fail e
  | Ok c ->
      Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
          (* an ok answer matching the pure renderer *)
          (match Client.request c ~id:1
                   (Protocol.Classify_valence { model = "sync"; n = 3; t = 1; depth = 3 })
                   ~timeout_s:30.
           with
          | Error e -> Alcotest.fail e
          | Ok line ->
              let code, output =
                Dispatch.classify_output ~model:"sync" ~n:3 ~t:1 ~depth:3 ()
              in
              check_str "wire answer equals renderer"
                (Protocol.encode_response
                   (Protocol.Resp_ok { id = Some 1; exit_code = code; output }))
                line);
          (* a malformed line answers an error and the daemon survives *)
          (match Client.send c "not json" with
          | Error e -> Alcotest.fail e
          | Ok () -> ());
          (match Client.read_lines c ~n:1 ~timeout_s:10. with
          | Ok [ line ] -> (
              match Protocol.decode_response line with
              | Ok (Protocol.Resp_error { code = Protocol.Parse; _ }) -> ()
              | _ -> Alcotest.fail "malformed line not answered with parse error")
          | Ok _ | Error _ -> Alcotest.fail "no answer to malformed line");
          (* still serving; then shut down over the wire *)
          (match Client.request c Protocol.Stats_query ~timeout_s:10. with
          | Ok _ -> ()
          | Error e -> Alcotest.fail ("stats after error: " ^ e));
          match Client.request c Protocol.Shutdown ~timeout_s:10. with
          | Ok _ -> ()
          | Error e -> Alcotest.fail ("shutdown: " ^ e))))

(* A client that pipelines several requests and hangs up mid-batch must
   only lose its own responses: the first failed write drops the
   client, the rest of its batch is abandoned (never written to the
   closed fd), and the daemon keeps serving everyone else. *)
let test_pipelined_disconnect () =
  with_daemon "drop" (fun path ->
      (match Client.connect path with
      | Error e -> Alcotest.fail e
      | Ok rude ->
          List.iter
            (fun id ->
              match
                Client.send rude
                  (Protocol.encode_request ~id
                     (Protocol.Classify_valence
                        { model = "sync"; n = 3; t = 1; depth = id }))
              with
              | Ok () -> ()
              | Error e -> Alcotest.fail ("pipeline write: " ^ e))
            [ 1; 2; 3; 4 ];
          (* hang up without reading a single response *)
          Client.close rude);
      match Client.connect path with
      | Error e -> Alcotest.fail e
      | Ok c ->
          Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
              (match Client.request c ~id:9
                       (Protocol.Classify_valence
                          { model = "sync"; n = 3; t = 1; depth = 3 })
                       ~timeout_s:30.
               with
              | Ok _ -> ()
              | Error e ->
                  Alcotest.fail ("daemon dead after rude disconnect: " ^ e));
              match Client.request c Protocol.Shutdown ~timeout_s:10. with
              | Ok _ -> ()
              | Error e -> Alcotest.fail ("shutdown: " ^ e)))

(* A signal storm around the accept/select loop must not kill the
   daemon: the loop's EINTR discipline treats an interrupted select as
   an empty readiness set and retries an interrupted accept, so a
   request issued mid-storm still gets correct bytes and the daemon
   still exits cleanly. *)
let test_signal_during_accept () =
  let old = Sys.signal Sys.sigusr1 (Sys.Signal_handle (fun _ -> ())) in
  Fun.protect
    ~finally:(fun () -> Sys.set_signal Sys.sigusr1 old)
    (fun () ->
      with_daemon "sigstorm" (fun path ->
          let storm n =
            for _ = 1 to n do
              Unix.kill (Unix.getpid ()) Sys.sigusr1
            done
          in
          for round = 1 to 5 do
            storm 20;
            match Client.connect path with
            | Error e -> Alcotest.fail ("connect mid-storm: " ^ e)
            | Ok c ->
                Fun.protect
                  ~finally:(fun () -> Client.close c)
                  (fun () ->
                    storm 20;
                    match
                      Client.request c ~id:round
                        (Protocol.Classify_valence
                           { model = "sync"; n = 3; t = 1; depth = 3 })
                        ~timeout_s:30.
                    with
                    | Error e -> Alcotest.fail ("request mid-storm: " ^ e)
                    | Ok line ->
                        let code, output =
                          Dispatch.classify_output ~model:"sync" ~n:3 ~t:1
                            ~depth:3 ()
                        in
                        check_str "answer mid-storm equals renderer"
                          (Protocol.encode_response
                             (Protocol.Resp_ok
                                { id = Some round; exit_code = code; output }))
                          line)
          done;
          storm 20;
          match Client.connect path with
          | Error e -> Alcotest.fail e
          | Ok c ->
              Fun.protect
                ~finally:(fun () -> Client.close c)
                (fun () ->
                  match Client.request c Protocol.Shutdown ~timeout_s:10. with
                  | Ok _ -> ()
                  | Error e -> Alcotest.fail ("shutdown mid-storm: " ^ e))))

(* Three connections racing the identical cold query against a
   multi-worker daemon must all get the renderer's bytes: the
   dispatcher coalesces them into one flight (or answers the laggards
   warm), and either path is byte-identical. *)
let test_concurrent_singleflight () =
  with_daemon
    ~tweak:(fun c -> { c with Server.jobs = 3 })
    "sflight"
    (fun path ->
      let req =
        Protocol.encode_request ~id:1
          (Protocol.Classify_valence { model = "sync"; n = 4; t = 1; depth = 3 })
      in
      let code, output =
        Dispatch.classify_output ~model:"sync" ~n:4 ~t:1 ~depth:3 ()
      in
      let expected =
        Protocol.encode_response
          (Protocol.Resp_ok { id = Some 1; exit_code = code; output })
      in
      let conns =
        List.map
          (fun _ ->
            match Client.connect path with
            | Ok c -> c
            | Error e -> Alcotest.fail e)
          [ 1; 2; 3 ]
      in
      Fun.protect
        ~finally:(fun () -> List.iter Client.close conns)
        (fun () ->
          List.iter
            (fun c ->
              match Client.send c req with
              | Ok () -> ()
              | Error e -> Alcotest.fail ("racing send: " ^ e))
            conns;
          List.iter
            (fun c ->
              match Client.read_lines c ~n:1 ~timeout_s:30. with
              | Ok [ line ] -> check_str "coalesced answer" expected line
              | Ok _ | Error _ -> Alcotest.fail "no answer to the raced query")
            conns);
      match Client.connect path with
      | Error e -> Alcotest.fail e
      | Ok c ->
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              match Client.request c Protocol.Shutdown ~timeout_s:10. with
              | Ok _ -> ()
              | Error e -> Alcotest.fail ("shutdown: " ^ e)))

(* A client that hangs up with a request in flight cancels only its own
   fault domain: a later client asking the same question gets the full,
   correct bytes — never a leaked cancellation. *)
let test_disconnect_cancels () =
  with_daemon
    ~tweak:(fun c -> { c with Server.jobs = 3 })
    "cancel"
    (fun path ->
      let q =
        Protocol.Classify_valence { model = "sync"; n = 4; t = 1; depth = 4 }
      in
      (match Client.connect path with
      | Error e -> Alcotest.fail e
      | Ok rude -> (
          match Client.send rude (Protocol.encode_request ~id:1 q) with
          | Ok () -> Client.close rude
          | Error e -> Alcotest.fail ("rude send: " ^ e)));
      match Client.connect path with
      | Error e -> Alcotest.fail e
      | Ok c ->
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              (match Client.request c ~id:2 q ~timeout_s:30. with
              | Error e -> Alcotest.fail ("survivor starved: " ^ e)
              | Ok line ->
                  let code, output =
                    Dispatch.classify_output ~model:"sync" ~n:4 ~t:1 ~depth:4 ()
                  in
                  check_str "survivor gets full bytes"
                    (Protocol.encode_response
                       (Protocol.Resp_ok
                          { id = Some 2; exit_code = code; output }))
                    line);
              match Client.request c Protocol.Shutdown ~timeout_s:10. with
              | Ok _ -> ()
              | Error e -> Alcotest.fail ("shutdown: " ^ e)))

(* ------------------------------------------------------------------ *)
(* Client resilience: typed connect timeout, deterministic backoff *)

let fast_retry =
  {
    Client.default_retry with
    connect_deadline_s = 0.2;
    backoff_initial_s = 0.01;
    backoff_max_s = 0.03;
  }

let test_connect_timeout () =
  let path = Filename.concat (Filename.get_temp_dir_name ()) "lsrv-no-such.sock" in
  let t0 = Unix.gettimeofday () in
  match Client.connect_err ~retry:fast_retry path with
  | Ok _ -> Alcotest.fail "connected to a socket that does not exist"
  | Error (Client.Io m) -> Alcotest.fail ("expected Connect_timeout, got Io: " ^ m)
  | Error (Client.Connect_timeout { path = p; attempts; elapsed_s; last }) ->
      check_str "error names the socket" path p;
      check "several backoff attempts were made" true (attempts >= 2);
      check "elapsed covers the deadline" true (elapsed_s >= 0.2);
      check "total time bounded by deadline + one backoff" true
        (Unix.gettimeofday () -. t0 < 1.);
      check "last errno recorded" true (String.length last > 0)

let test_backoff_deterministic () =
  (* same policy, same schedule — and every delay lands in
     [50%, 100%] of the capped nominal *)
  List.iter
    (fun attempt ->
      let a = Client.backoff_s fast_retry ~attempt in
      let b = Client.backoff_s fast_retry ~attempt in
      check ("client attempt " ^ string_of_int attempt ^ " deterministic") true
        (a = b);
      let nominal =
        Float.min fast_retry.Client.backoff_max_s
          (fast_retry.Client.backoff_initial_s *. (2. ** float_of_int attempt))
      in
      check "within the jitter band" true
        (a >= (0.5 *. nominal) -. 1e-9 && a <= nominal +. 1e-9))
    [ 0; 1; 2; 5; 10 ];
  let sup = { Supervisor.default with backoff_initial_s = 0.1; backoff_max_s = 0.4 } in
  List.iter
    (fun attempt ->
      let a = Supervisor.backoff_s sup ~attempt in
      check ("supervisor attempt " ^ string_of_int attempt ^ " deterministic")
        true
        (a = Supervisor.backoff_s sup ~attempt);
      check "supervisor delay capped" true (a <= sup.Supervisor.backoff_max_s))
    [ 0; 1; 2; 5; 10 ];
  (* distinct seeds, distinct schedules (the herd desynchronises) *)
  check "seed moves the schedule" true
    (Client.backoff_s fast_retry ~attempt:3
    <> Client.backoff_s { fast_retry with Client.jitter_seed = 1 } ~attempt:3)

(* ------------------------------------------------------------------ *)
(* Supervisor: restart counting, exception crashes, circuit breaker *)

let quiet_sup =
  {
    Supervisor.default with
    backoff_initial_s = 0.001;
    backoff_max_s = 0.002;
    verbose = false;
  }

let test_supervisor_restarts () =
  let calls = ref 0 in
  let outcome =
    Supervisor.run_inprocess ~config:quiet_sup (fun () ->
        incr calls;
        if !calls <= 2 then Server.exit_crashed else 0)
  in
  check_int "two crashes absorbed" 2 outcome.Supervisor.restarts;
  check_int "final incarnation's code" 0 outcome.Supervisor.exit_code;
  check "breaker untouched" false outcome.Supervisor.gave_up;
  (* a raised exception is a crash like any abnormal exit *)
  let calls = ref 0 in
  let outcome =
    Supervisor.run_inprocess ~config:quiet_sup (fun () ->
        incr calls;
        if !calls = 1 then failwith "boom" else 0)
  in
  check_int "exception absorbed" 1 outcome.Supervisor.restarts;
  (* exit 2 (bind failure) must NOT be respawned *)
  let calls = ref 0 in
  let outcome =
    Supervisor.run_inprocess ~config:quiet_sup (fun () ->
        incr calls;
        2)
  in
  check_int "bind failure not respawned" 1 !calls;
  check_int "bind failure code passed through" 2 outcome.Supervisor.exit_code

let test_supervisor_breaker () =
  let calls = ref 0 in
  let outcome =
    Supervisor.run_inprocess
      ~config:{ quiet_sup with Supervisor.max_restarts = 2 }
      (fun () ->
        incr calls;
        Server.exit_crashed)
  in
  check "breaker tripped" true outcome.Supervisor.gave_up;
  check_int "gave up with exit 1" 1 outcome.Supervisor.exit_code;
  check_int "max_restarts crashes absorbed before the trip" 2
    outcome.Supervisor.restarts;
  check_int "spawned max_restarts + 1 times" 3 !calls

(* ------------------------------------------------------------------ *)
(* Warm-cache spill: save + load roundtrip through the checkpoint *)

let tmp_counter = Atomic.make 0

let with_tmp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "lsrv-test-%d-%d" (Unix.getpid ())
         (Atomic.fetch_and_add tmp_counter 1))
  in
  let rec rm path =
    match Sys.is_directory path with
    | true ->
        Array.iter (fun x -> rm (Filename.concat path x)) (Sys.readdir path);
        Sys.rmdir path
    | false -> Sys.remove path
    | exception Sys_error _ -> ()
  in
  Fun.protect ~finally:(fun () -> rm dir) (fun () -> f dir)

let test_spill_roundtrip () =
  with_tmp_dir (fun dir ->
      let rcache = Cache.create () in
      Cache.add rcache "k1" { Cache.exit_code = 0; output = "first\n" };
      Cache.add rcache "k2" { Cache.exit_code = 3; output = "" };
      let vcache = Layered_analysis.Valence_query.create_cache ~spill:true () in
      (* populate the classifier memo through a real query *)
      ignore
        (Layered_analysis.Valence_query.run ~cache:vcache ~model:"sync" ~n:3
           ~t:1 ~depth:2 ());
      (match Spill.save ~dir ~rcache ~vcache () with
      | Ok n -> check "spill saved some entries" true (n > 0)
      | Error e -> Alcotest.fail ("spill save: " ^ e));
      (* a fresh process's caches: reload and compare *)
      let rcache' = Cache.create () in
      let vcache' = Layered_analysis.Valence_query.create_cache ~spill:true () in
      let restored = Spill.load ~dir ~rcache:rcache' ~vcache:vcache' in
      check "entries restored" true (restored > 0);
      (match Cache.find rcache' "k1" with
      | Some { Cache.exit_code = 0; output = "first\n" } -> ()
      | _ -> Alcotest.fail "result-cache entry lost in the spill roundtrip");
      check "valence memo restored" true
        (Layered_analysis.Valence_query.(
           spill_entries (export_spill vcache'))
        > 0);
      (* generations are pruned: repeated spills do not accumulate *)
      List.iter
        (fun _ -> ignore (Spill.save ~dir ~rcache ~vcache ()))
        [ 1; 2; 3; 4; 5 ];
      check "old spill generations pruned" true
        (Array.length (Sys.readdir dir) <= Spill.keep_generations);
      (* an unreadable spill is a cold start, not a crash *)
      check_int "missing dir loads cold" 0
        (Spill.load ~dir:"/nonexistent/lsrv" ~rcache:(Cache.create ())
           ~vcache:(Layered_analysis.Valence_query.create_cache ~spill:true ())))

(* The retention depth is a parameter now (--spill-keep on the CLI):
   keep=1 must leave at most one generation on disk, and that survivor
   must still load. *)
let test_spill_keep () =
  with_tmp_dir (fun dir ->
      let rcache = Cache.create () in
      Cache.add rcache "k" { Cache.exit_code = 0; output = "x\n" };
      let vcache = Layered_analysis.Valence_query.create_cache ~spill:true () in
      List.iter
        (fun _ ->
          match Spill.save ~keep:1 ~dir ~rcache ~vcache () with
          | Ok _ -> ()
          | Error e -> Alcotest.fail ("spill save: " ^ e))
        [ 1; 2; 3; 4 ];
      check "keep=1 leaves a single generation" true
        (Array.length (Sys.readdir dir) <= 1);
      check "the surviving generation still loads" true
        (Spill.load ~dir ~rcache:(Cache.create ())
           ~vcache:(Layered_analysis.Valence_query.create_cache ~spill:true ())
        > 0))

(* ------------------------------------------------------------------ *)
(* Slow-loris: a half-sent request line trips the idle deadline *)

let test_slow_loris () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "lsrv-loris-%d.sock" (Unix.getpid ()))
  in
  let cfg =
    {
      (Server.default_config ~socket_path:path) with
      request_timeout_s = 0.;
      idle_timeout_s = 0.3;
      install_signals = false;
    }
  in
  let dom = Domain.spawn (fun () -> Server.run cfg) in
  let rec wait n =
    if Sys.file_exists path then ()
    else if n = 0 then Alcotest.fail "server socket never appeared"
    else (
      Unix.sleepf 0.05;
      wait (n - 1))
  in
  wait 100;
  (* half a request line, never terminated: a raw fragment written
     outside Client (which would append the newline) *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let frag = "{\"op\":\"cla" in
  ignore (Unix.write_substring fd frag 0 (String.length frag));
  (* meanwhile an honest client keeps being served *)
  (match Client.connect path with
  | Error e -> Alcotest.fail e
  | Ok c ->
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          match Client.request c Protocol.Stats_query ~timeout_s:10. with
          | Ok _ -> ()
          | Error e -> Alcotest.fail ("honest client starved: " ^ e)));
  (* the stalled connection gets a structured timeout, then EOF *)
  let buf = Bytes.create 4096 in
  let deadline = Unix.gettimeofday () +. 5. in
  let rec read_all acc =
    let remaining = deadline -. Unix.gettimeofday () in
    if remaining <= 0. then acc
    else
      match Unix.select [ fd ] [] [] remaining with
      | [], _, _ -> acc
      | _ -> (
          match Unix.read fd buf 0 (Bytes.length buf) with
          | 0 -> acc
          | n -> read_all (acc ^ Bytes.sub_string buf 0 n)
          | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
              acc)
  in
  let answer = read_all "" in
  Unix.close fd;
  (match String.index_opt answer '\n' with
  | None -> Alcotest.fail "slow-loris connection got no timeout response"
  | Some i -> (
      match Protocol.decode_response (String.sub answer 0 i) with
      | Ok (Protocol.Resp_error { code = Protocol.Timeout; id = None; _ }) -> ()
      | _ -> Alcotest.fail "stalled connection not answered with a timeout error"));
  (* daemon still healthy: shut it down over the wire *)
  (match Client.connect path with
  | Error e -> Alcotest.fail e
  | Ok c ->
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          match Client.request c Protocol.Shutdown ~timeout_s:10. with
          | Ok _ -> ()
          | Error e -> Alcotest.fail ("shutdown after loris: " ^ e)));
  check_int "clean exit code" 0 (Domain.join dom)

(* ------------------------------------------------------------------ *)
(* End to end crash recovery: supervised daemon, replaying client *)

let test_replay_after_crash () =
  with_tmp_dir (fun dir ->
      let path =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "lsrv-replay-%d.sock" (Unix.getpid ()))
      in
      let cfg =
        {
          (Server.default_config ~socket_path:path) with
          request_timeout_s = 0.;
          idle_timeout_s = 0.;
          spill_dir = Some dir;
          spill_every = 1;
          install_signals = false;
        }
      in
      let dom =
        Domain.spawn (fun () ->
            Supervisor.run_inprocess ~config:quiet_sup (fun () -> Server.run cfg))
      in
      let rec wait n =
        if Sys.file_exists path then ()
        else if n = 0 then Alcotest.fail "server socket never appeared"
        else (
          Unix.sleepf 0.05;
          wait (n - 1))
      in
      wait 100;
      (* the crash site is visited once per response: with 3 requests +
         shutdown it fires within any seed's firing window (< 3) *)
      Fault.arm ~seed:1 Fault.Serve_crash_before_reply;
      let outcome =
        Fun.protect ~finally:Fault.disarm (fun () ->
            (match
               Client.connect_err
                 ~retry:{ fast_retry with Client.connect_deadline_s = 5. }
                 path
             with
            | Error e -> Alcotest.fail (Client.error_message e)
            | Ok c ->
                Fun.protect
                  ~finally:(fun () -> Client.close c)
                  (fun () ->
                    List.iter
                      (fun id ->
                        let req =
                          Protocol.Classify_valence
                            { model = "sync"; n = 3; t = 1; depth = id }
                        in
                        match Client.request c ~id req ~timeout_s:30. with
                        | Error e ->
                            Alcotest.fail
                              (Printf.sprintf "request %d not recovered: %s" id e)
                        | Ok line -> (
                            match Protocol.decode_response line with
                            | Ok (Protocol.Resp_ok { id = Some got; _ }) ->
                                check_int "response id echoes the request" id got
                            | _ ->
                                Alcotest.fail
                                  (Printf.sprintf "request %d answered badly" id)))
                      [ 1; 2; 3 ];
                    check "the injected crash fired" true (Fault.fired () > 0);
                    check "the client replayed through it" true
                      (Client.replays c > 0);
                    match Client.request c Protocol.Shutdown ~timeout_s:10. with
                    | Ok _ -> ()
                    | Error e -> Alcotest.fail ("shutdown: " ^ e)));
            Domain.join dom)
      in
      check "supervisor absorbed at least one crash" true
        (outcome.Supervisor.restarts > 0);
      check "no crash loop" false outcome.Supervisor.gave_up;
      ignore (try Unix.unlink path with Unix.Unix_error _ -> ()))

let () =
  Alcotest.run "layered_serve"
    [
      ( "jsonx",
        [
          Alcotest.test_case "values roundtrip" `Quick test_jsonx_roundtrip;
          Alcotest.test_case "malformed rejected" `Quick test_jsonx_rejects;
          Alcotest.test_case "unicode escapes" `Quick test_jsonx_unicode_escape;
          Alcotest.test_case "nesting cap" `Quick test_jsonx_depth_cap;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "requests roundtrip" `Quick test_request_roundtrip;
          Alcotest.test_case "responses roundtrip" `Quick test_response_roundtrip;
          Alcotest.test_case "rejection paths" `Quick test_request_rejections;
          Alcotest.test_case "experiment id canonicalised" `Quick
            test_request_canonical_experiment;
          Alcotest.test_case "cache keys" `Quick test_cache_key;
        ] );
      ( "framing",
        [
          Alcotest.test_case "partial lines" `Quick test_framing_partial_lines;
          Alcotest.test_case "many per read" `Quick test_framing_multi_per_read;
          Alcotest.test_case "oversized line" `Quick test_framing_oversized;
          Alcotest.test_case "custom response cap" `Quick test_framing_custom_cap;
        ] );
      ( "cache",
        [
          Alcotest.test_case "counters and replay" `Quick test_cache_counters;
          Alcotest.test_case "stats pp" `Quick test_stats_pp_mentions_result_cache;
        ] );
      ( "admission",
        [
          Alcotest.test_case "shed and admit" `Quick test_admission;
          Alcotest.test_case "per-client cap" `Quick
            test_admission_per_client_cap;
        ] );
      ( "backlog",
        [
          Alcotest.test_case "deadline then arrival order" `Quick
            test_backlog_order;
          Alcotest.test_case "fair-share eviction" `Quick
            test_backlog_fair_share;
        ] );
      ( "dispatch",
        [
          Alcotest.test_case "matches the one-shot renderer" `Quick
            test_dispatch_matches_renderer;
          Alcotest.test_case "cache replay" `Quick test_dispatch_cache_replay;
          Alcotest.test_case "containment" `Quick test_dispatch_containment;
          Alcotest.test_case "load shed" `Quick test_dispatch_shed;
        ] );
      ( "server",
        [
          Alcotest.test_case "end to end" `Quick test_end_to_end;
          Alcotest.test_case "pipelined disconnect" `Quick
            test_pipelined_disconnect;
          Alcotest.test_case "slow-loris idle timeout" `Quick test_slow_loris;
          Alcotest.test_case "signal storm on accept" `Quick
            test_signal_during_accept;
          Alcotest.test_case "concurrent single-flight" `Quick
            test_concurrent_singleflight;
          Alcotest.test_case "disconnect cancels only its own work" `Quick
            test_disconnect_cancels;
        ] );
      ( "client",
        [
          Alcotest.test_case "typed connect timeout" `Quick test_connect_timeout;
          Alcotest.test_case "deterministic backoff" `Quick
            test_backoff_deterministic;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "restart counting" `Quick test_supervisor_restarts;
          Alcotest.test_case "circuit breaker" `Quick test_supervisor_breaker;
        ] );
      ( "spill",
        [
          Alcotest.test_case "roundtrip" `Quick test_spill_roundtrip;
          Alcotest.test_case "retention depth" `Quick test_spill_keep;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "replay after crash" `Quick test_replay_after_crash;
        ] );
    ]
