(* Tests for the serve subsystem: the JSON codec, the wire protocol
   (every variant round-trips; every rejection path answers with the
   right structured error), line framing, the result cache and its
   stats counters, admission control, dispatcher containment, and an
   end-to-end in-process daemon over a real Unix socket. *)

open Layered_serve
module Stats = Layered_runtime.Stats
module Fault = Layered_runtime.Fault

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Jsonx *)

let roundtrip j = Jsonx.of_string (Jsonx.to_string j)

let test_jsonx_roundtrip () =
  let samples =
    [
      Jsonx.Null;
      Jsonx.Bool true;
      Jsonx.Bool false;
      Jsonx.Int 0;
      Jsonx.Int (-42);
      Jsonx.Int max_int;
      Jsonx.String "";
      Jsonx.String "plain";
      Jsonx.String "quotes \" backslash \\ newline \n tab \t ctrl \001";
      Jsonx.List [];
      Jsonx.List [ Jsonx.Int 1; Jsonx.String "two"; Jsonx.Null ];
      Jsonx.Obj [];
      Jsonx.Obj
        [
          ("a", Jsonx.Int 1);
          ("nested", Jsonx.Obj [ ("l", Jsonx.List [ Jsonx.Bool false ]) ]);
        ];
    ]
  in
  List.iter
    (fun j ->
      match roundtrip j with
      | Ok j' -> check (Jsonx.to_string j ^ " roundtrips") true (j = j')
      | Error e -> Alcotest.fail (Jsonx.to_string j ^ ": " ^ e))
    samples

let test_jsonx_rejects () =
  let bad =
    [
      "";
      "{";
      "}";
      "{\"a\":}";
      "[1,]";
      "nul";
      "\"unterminated";
      "\"bad \\q escape\"";
      "01a";
      "{\"a\":1} trailing";
      "{\"a\" 1}";
      "\"raw \n newline\"";
    ]
  in
  List.iter
    (fun s ->
      match Jsonx.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted malformed %S" s))
    bad

(* \u escapes must be exactly four hex digits; int_of_string-style
   OCaml literal syntax (underscores, 0x prefixes) is not JSON *)
let test_jsonx_unicode_escape () =
  (match Jsonx.of_string "\"\\u012f\"" with
  | Ok (Jsonx.String s) -> check_str "U+012F decodes to UTF-8" "\xc4\xaf" s
  | _ -> Alcotest.fail "valid \\u escape rejected");
  (match Jsonx.of_string "\"\\u001F\"" with
  | Ok (Jsonx.String s) -> check_str "upper-case hex accepted" "\x1f" s
  | _ -> Alcotest.fail "upper-case \\u escape rejected");
  List.iter
    (fun s ->
      match Jsonx.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted malformed %S" s))
    [ "\"\\u1_2f\""; "\"\\u12g4\""; "\"\\u 123\""; "\"\\u0x12\""; "\"\\u12\"" ]

let test_jsonx_depth_cap () =
  let deep n = String.concat "" (List.init n (fun _ -> "[")) in
  let ok_depth = String.concat "" (List.init 10 (fun _ -> "[")) ^ "1"
                 ^ String.concat "" (List.init 10 (fun _ -> "]")) in
  check "moderate nesting accepted" true (Result.is_ok (Jsonx.of_string ok_depth));
  check "hostile nesting rejected" true
    (Result.is_error (Jsonx.of_string (deep 1000)))

(* ------------------------------------------------------------------ *)
(* Protocol: request round-trips *)

let all_requests =
  [
    Protocol.Classify_valence { model = "sync"; n = 3; t = 1; depth = 3 };
    Protocol.Sweep { model = "iis"; n = 3; t = 1; depth = 2 };
    Protocol.Run_experiment { id = "E1" };
    Protocol.Stats_query;
    Protocol.Shutdown;
  ]

let test_request_roundtrip () =
  List.iter
    (fun req ->
      (* with an id *)
      (match Protocol.decode_request (Protocol.encode_request ~id:7 req) with
      | Ok (Some 7, req') -> check "request roundtrips" true (req = req')
      | Ok _ -> Alcotest.fail "id lost in roundtrip"
      | Error (_, _, m) -> Alcotest.fail m);
      (* and without *)
      match Protocol.decode_request (Protocol.encode_request req) with
      | Ok (None, req') -> check "id-less request roundtrips" true (req = req')
      | Ok _ -> Alcotest.fail "phantom id appeared"
      | Error (_, _, m) -> Alcotest.fail m)
    all_requests

let all_responses =
  [
    Protocol.Resp_ok { id = Some 1; exit_code = 0; output = "line one\nline two\n" };
    Protocol.Resp_ok { id = None; exit_code = 3; output = "" };
    Protocol.Resp_error
      { id = Some 2; code = Protocol.Parse; message = "malformed JSON: oops" };
    Protocol.Resp_error
      { id = None; code = Protocol.Unknown_experiment; message = "no E99" };
    Protocol.Resp_error { id = Some 3; code = Protocol.Internal; message = "boom" };
    Protocol.Resp_overloaded { id = Some 4; reason = `Queue };
    Protocol.Resp_overloaded { id = None; reason = `Memory };
  ]

let test_response_roundtrip () =
  List.iter
    (fun resp ->
      let line = Protocol.encode_response resp in
      check "single line" false (String.contains line '\n');
      match Protocol.decode_response line with
      | Ok resp' -> check (line ^ " roundtrips") true (resp = resp')
      | Error e -> Alcotest.fail (line ^ ": " ^ e))
    all_responses

(* Every rejection path answers with the documented error code, and
   carries the request id whenever the line parsed far enough to have
   one. *)
let expect_error ?id code line =
  match Protocol.decode_request line with
  | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" line)
  | Error (got_id, got_code, _) ->
      check_str
        (Printf.sprintf "%S -> %s" line (Protocol.error_code_name code))
        (Protocol.error_code_name code)
        (Protocol.error_code_name got_code);
      check "rejection echoes the id" true (got_id = id)

let test_request_rejections () =
  expect_error Protocol.Parse "not json at all";
  expect_error Protocol.Parse "[1,2,3]";
  expect_error Protocol.Parse "{\"op\":\"stats\"} {\"op\":\"stats\"}";
  expect_error ~id:1 Protocol.Bad_request "{\"id\":1}";
  expect_error ~id:1 Protocol.Bad_request "{\"id\":1,\"op\":\"frobnicate\"}";
  expect_error Protocol.Bad_request "{\"op\":7}";
  expect_error Protocol.Bad_request "{\"id\":\"one\",\"op\":\"stats\"}";
  expect_error ~id:2 Protocol.Bad_request
    "{\"id\":2,\"op\":\"classify-valence\",\"model\":\"sync\",\"n\":3,\"t\":1}";
  expect_error ~id:2 Protocol.Bad_request
    "{\"id\":2,\"op\":\"classify-valence\",\"model\":\"sync\",\"n\":\"three\",\"t\":1,\"depth\":3}";
  expect_error ~id:3 Protocol.Unknown_model
    "{\"id\":3,\"op\":\"sweep\",\"model\":\"quantum\",\"n\":3,\"t\":1,\"depth\":2}";
  expect_error ~id:4 Protocol.Unknown_experiment
    "{\"id\":4,\"op\":\"run-experiment\",\"experiment\":\"E99\"}";
  (* the CLI's lower bounds *)
  expect_error ~id:5 Protocol.Out_of_range
    "{\"id\":5,\"op\":\"sweep\",\"model\":\"sync\",\"n\":0,\"t\":1,\"depth\":2}";
  expect_error ~id:5 Protocol.Out_of_range
    "{\"id\":5,\"op\":\"sweep\",\"model\":\"sync\",\"n\":3,\"t\":-1,\"depth\":2}";
  expect_error ~id:5 Protocol.Out_of_range
    "{\"id\":5,\"op\":\"sweep\",\"model\":\"sync\",\"n\":3,\"t\":1,\"depth\":-1}";
  (* the serve-side upper caps *)
  expect_error ~id:6 Protocol.Out_of_range
    (Printf.sprintf
       "{\"id\":6,\"op\":\"classify-valence\",\"model\":\"sync\",\"n\":%d,\"t\":1,\"depth\":2}"
       (Protocol.max_n + 1));
  expect_error ~id:6 Protocol.Out_of_range
    (Printf.sprintf
       "{\"id\":6,\"op\":\"classify-valence\",\"model\":\"sync\",\"n\":3,\"t\":%d,\"depth\":2}"
       (Protocol.max_t + 1));
  expect_error ~id:6 Protocol.Out_of_range
    (Printf.sprintf
       "{\"id\":6,\"op\":\"classify-valence\",\"model\":\"sync\",\"n\":3,\"t\":1,\"depth\":%d}"
       (Protocol.max_depth + 1))

(* Experiment lookup is case-insensitive in the registry; the decoded
   request carries the canonical id. *)
let test_request_canonical_experiment () =
  match Protocol.decode_request "{\"op\":\"run-experiment\",\"experiment\":\"e1\"}" with
  | Ok (None, Protocol.Run_experiment { id }) -> check_str "canonical id" "E1" id
  | _ -> Alcotest.fail "lower-case experiment id rejected"

let test_cache_key () =
  check "stats never cached" true (Protocol.cache_key Protocol.Stats_query = None);
  check "shutdown never cached" true (Protocol.cache_key Protocol.Shutdown = None);
  let k1 =
    Protocol.cache_key
      (Protocol.Classify_valence { model = "sync"; n = 3; t = 1; depth = 3 })
  in
  let k2 =
    Protocol.cache_key
      (Protocol.Classify_valence { model = "sync"; n = 3; t = 1; depth = 4 })
  in
  check "compute requests are keyed" true (k1 <> None);
  check "distinct params, distinct keys" true (k1 <> k2)

(* ------------------------------------------------------------------ *)
(* Session framing *)

let test_framing_partial_lines () =
  let s = Session.create () in
  let lines, ov = Session.feed s "{\"op\":\"st" in
  check "no line yet" true (lines = [] && not ov);
  let lines, ov = Session.feed s "ats\"}\n{\"op\":" in
  check "first line complete" true (lines = [ "{\"op\":\"stats\"}" ] && not ov);
  let lines, ov = Session.feed s "\"shutdown\"}\n" in
  check "second line complete" true (lines = [ "{\"op\":\"shutdown\"}" ] && not ov)

let test_framing_multi_per_read () =
  let s = Session.create () in
  let lines, ov = Session.feed s "one\ntwo\r\nthree\nfour" in
  check "three lines, CR stripped" true
    (lines = [ "one"; "two"; "three" ] && not ov);
  check_int "residue buffered" 4 (Session.pending_bytes s);
  let lines, ov = Session.feed s "\n" in
  check "residue completes" true (lines = [ "four" ] && not ov)

let test_framing_oversized () =
  let s = Session.create () in
  let big = String.make (Protocol.max_line_bytes + 1) 'x' in
  let lines, ov = Session.feed s ("ok\n" ^ big ^ "\n") in
  check "lines before the overflow still delivered" true (lines = [ "ok" ]);
  check "overflow flagged" true ov;
  let lines, ov = Session.feed s "more\n" in
  check "overflowed session yields nothing" true (lines = [] && ov);
  (* an unterminated over-long residue also overflows *)
  let s2 = Session.create () in
  let _, ov = Session.feed s2 big in
  check "unterminated oversized residue overflows" true ov

(* the client half frames responses with a larger cap: a response line
   longer than the request limit must come through intact *)
let test_framing_custom_cap () =
  let s = Session.create ~max_line_bytes:max_int () in
  let big = String.make (Protocol.max_line_bytes * 2) 'y' in
  let lines, ov = Session.feed s (big ^ "\n") in
  check "big response line delivered" true (lines = [ big ] && not ov)

(* ------------------------------------------------------------------ *)
(* Result cache + stats counters *)

let test_cache_counters () =
  Stats.reset ();
  let c = Cache.create ~max_entries:4 () in
  check "miss on empty" true (Cache.find c "k" = None);
  Cache.add c "k" { Cache.exit_code = 0; output = "payload" };
  (match Cache.find c "k" with
  | Some { Cache.exit_code = 0; output = "payload" } -> ()
  | _ -> Alcotest.fail "hit did not replay the exact entry");
  let s = Stats.snapshot () in
  check_int "one hit counted" 1 s.Stats.result_cache_hits;
  check_int "one miss counted" 1 s.Stats.result_cache_misses;
  (* reset-on-full keeps the table bounded *)
  List.iter
    (fun i ->
      Cache.add c (string_of_int i) { Cache.exit_code = 0; output = "" })
    [ 1; 2; 3; 4; 5 ];
  check "bounded" true (Cache.entries c <= 4)

let test_stats_pp_mentions_result_cache () =
  Stats.reset ();
  Stats.record_result_cache ~hit:true;
  Stats.record_result_cache ~hit:false;
  let rendered = Format.asprintf "%a" Stats.pp (Stats.snapshot ()) in
  check "pp prints result cache lines" true
    (let has needle =
       let nl = String.length needle and l = String.length rendered in
       let rec go i = i + nl <= l && (String.sub rendered i nl = needle || go (i + 1)) in
       go 0
     in
     has "result cache hits" && has "result cache misses")

(* ------------------------------------------------------------------ *)
(* Admission *)

let test_admission () =
  let cfg =
    { Admission.queue_cap = 2; max_heap_mb = 1_000_000; request_timeout_s = 5. }
  in
  (match Admission.decide cfg ~pending:0 with
  | Admission.Admit _ -> ()
  | Admission.Shed _ -> Alcotest.fail "idle daemon shed a request");
  (match Admission.decide cfg ~pending:3 with
  | Admission.Shed `Queue -> ()
  | _ -> Alcotest.fail "queue depth over cap not shed");
  match
    Admission.decide
      { cfg with Admission.max_heap_mb = 0 (* watermark below any live heap *) }
      ~pending:0
  with
  | Admission.Shed `Memory -> ()
  | _ -> Alcotest.fail "heap over watermark not shed"

(* ------------------------------------------------------------------ *)
(* Dispatcher: byte-identity with the renderers, containment, caching *)

let with_ctx f =
  Layered_runtime.Pool.with_pool ~jobs:1 (fun pool ->
      f
        (Dispatch.create_ctx ~pool
           ~admission:
             {
               Admission.queue_cap = 64;
               max_heap_mb = 1_000_000;
               request_timeout_s = 0.;
             }))

let classify_line ~id = Protocol.encode_request ~id
    (Protocol.Classify_valence { model = "sync"; n = 3; t = 1; depth = 3 })

let test_dispatch_matches_renderer () =
  with_ctx (fun ctx ->
      match Dispatch.handle ctx ~pending:0 (classify_line ~id:1) with
      | Protocol.Resp_ok { id = Some 1; exit_code; output } ->
          let ref_code, ref_out =
            Dispatch.classify_output ~model:"sync" ~n:3 ~t:1 ~depth:3 ()
          in
          check_int "exit code" ref_code exit_code;
          check_str "output bytes" ref_out output
      | _ -> Alcotest.fail "classify did not answer ok")

let test_dispatch_cache_replay () =
  with_ctx (fun ctx ->
      Stats.reset ();
      let first = Dispatch.handle ctx ~pending:0 (classify_line ~id:1) in
      let second = Dispatch.handle ctx ~pending:0 (classify_line ~id:1) in
      check "replay is byte-identical" true (first = second);
      let s = Stats.snapshot () in
      check_int "second answer came from the cache" 1 s.Stats.result_cache_hits)

let test_dispatch_containment () =
  with_ctx (fun ctx ->
      (* the armed handler fault fires within the first three computes;
         the dispatcher must answer an internal error, then keep serving *)
      Fault.arm ~seed:7 Fault.Serve_handler_raise;
      let responses =
        Fun.protect ~finally:Fault.disarm (fun () ->
            List.map
              (fun depth ->
                Dispatch.handle ctx ~pending:0
                  (Protocol.encode_request ~id:depth
                     (Protocol.Classify_valence
                        { model = "sync"; n = 3; t = 1; depth })))
              [ 1; 2; 3 ])
      in
      check_int "the fault fired" 1 (Fault.fired ());
      let internals =
        List.length
          (List.filter
             (function
               | Protocol.Resp_error { code = Protocol.Internal; _ } -> true
               | _ -> false)
             responses)
      in
      check_int "exactly one request poisoned" 1 internals;
      match Dispatch.handle ctx ~pending:0 (classify_line ~id:9) with
      | Protocol.Resp_ok _ -> ()
      | _ -> Alcotest.fail "dispatcher dead after a contained raise")

let test_dispatch_shed () =
  with_ctx (fun ctx ->
      (match Dispatch.handle ctx ~pending:1000 (classify_line ~id:1) with
      | Protocol.Resp_overloaded { id = Some 1; reason = `Queue } -> ()
      | _ -> Alcotest.fail "queue overload not shed");
      match
        Dispatch.handle ctx ~pending:1000
          (Protocol.encode_request Protocol.Stats_query)
      with
      | Protocol.Resp_ok _ -> ()
      | _ -> Alcotest.fail "stats must bypass admission")

(* ------------------------------------------------------------------ *)
(* End to end: a real daemon on a real socket *)

let with_daemon tag f =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "lsrv-%s-%d.sock" tag (Unix.getpid ()))
  in
  let cfg =
    {
      (Server.default_config ~socket_path:path) with
      request_timeout_s = 0.;
      install_signals = false;
    }
  in
  let dom = Domain.spawn (fun () -> Server.run cfg) in
  let rec wait n =
    if Sys.file_exists path then ()
    else if n = 0 then Alcotest.fail "server socket never appeared"
    else (Unix.sleepf 0.05; wait (n - 1))
  in
  wait 100;
  f path;
  check_int "clean exit code" 0 (Domain.join dom);
  check "socket unlinked" false (Sys.file_exists path)

let test_end_to_end () =
  with_daemon "e2e" (fun path ->
  (match Client.connect path with
  | Error e -> Alcotest.fail e
  | Ok c ->
      Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
          (* an ok answer matching the pure renderer *)
          (match Client.request c ~id:1
                   (Protocol.Classify_valence { model = "sync"; n = 3; t = 1; depth = 3 })
                   ~timeout_s:30.
           with
          | Error e -> Alcotest.fail e
          | Ok line ->
              let code, output =
                Dispatch.classify_output ~model:"sync" ~n:3 ~t:1 ~depth:3 ()
              in
              check_str "wire answer equals renderer"
                (Protocol.encode_response
                   (Protocol.Resp_ok { id = Some 1; exit_code = code; output }))
                line);
          (* a malformed line answers an error and the daemon survives *)
          (match Client.send c "not json" with
          | Error e -> Alcotest.fail e
          | Ok () -> ());
          (match Client.read_lines c ~n:1 ~timeout_s:10. with
          | Ok [ line ] -> (
              match Protocol.decode_response line with
              | Ok (Protocol.Resp_error { code = Protocol.Parse; _ }) -> ()
              | _ -> Alcotest.fail "malformed line not answered with parse error")
          | Ok _ | Error _ -> Alcotest.fail "no answer to malformed line");
          (* still serving; then shut down over the wire *)
          (match Client.request c Protocol.Stats_query ~timeout_s:10. with
          | Ok _ -> ()
          | Error e -> Alcotest.fail ("stats after error: " ^ e));
          match Client.request c Protocol.Shutdown ~timeout_s:10. with
          | Ok _ -> ()
          | Error e -> Alcotest.fail ("shutdown: " ^ e))))

(* A client that pipelines several requests and hangs up mid-batch must
   only lose its own responses: the first failed write drops the
   client, the rest of its batch is abandoned (never written to the
   closed fd), and the daemon keeps serving everyone else. *)
let test_pipelined_disconnect () =
  with_daemon "drop" (fun path ->
      (match Client.connect path with
      | Error e -> Alcotest.fail e
      | Ok rude ->
          List.iter
            (fun id ->
              match
                Client.send rude
                  (Protocol.encode_request ~id
                     (Protocol.Classify_valence
                        { model = "sync"; n = 3; t = 1; depth = id }))
              with
              | Ok () -> ()
              | Error e -> Alcotest.fail ("pipeline write: " ^ e))
            [ 1; 2; 3; 4 ];
          (* hang up without reading a single response *)
          Client.close rude);
      match Client.connect path with
      | Error e -> Alcotest.fail e
      | Ok c ->
          Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
              (match Client.request c ~id:9
                       (Protocol.Classify_valence
                          { model = "sync"; n = 3; t = 1; depth = 3 })
                       ~timeout_s:30.
               with
              | Ok _ -> ()
              | Error e ->
                  Alcotest.fail ("daemon dead after rude disconnect: " ^ e));
              match Client.request c Protocol.Shutdown ~timeout_s:10. with
              | Ok _ -> ()
              | Error e -> Alcotest.fail ("shutdown: " ^ e)))

let () =
  Alcotest.run "layered_serve"
    [
      ( "jsonx",
        [
          Alcotest.test_case "values roundtrip" `Quick test_jsonx_roundtrip;
          Alcotest.test_case "malformed rejected" `Quick test_jsonx_rejects;
          Alcotest.test_case "unicode escapes" `Quick test_jsonx_unicode_escape;
          Alcotest.test_case "nesting cap" `Quick test_jsonx_depth_cap;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "requests roundtrip" `Quick test_request_roundtrip;
          Alcotest.test_case "responses roundtrip" `Quick test_response_roundtrip;
          Alcotest.test_case "rejection paths" `Quick test_request_rejections;
          Alcotest.test_case "experiment id canonicalised" `Quick
            test_request_canonical_experiment;
          Alcotest.test_case "cache keys" `Quick test_cache_key;
        ] );
      ( "framing",
        [
          Alcotest.test_case "partial lines" `Quick test_framing_partial_lines;
          Alcotest.test_case "many per read" `Quick test_framing_multi_per_read;
          Alcotest.test_case "oversized line" `Quick test_framing_oversized;
          Alcotest.test_case "custom response cap" `Quick test_framing_custom_cap;
        ] );
      ( "cache",
        [
          Alcotest.test_case "counters and replay" `Quick test_cache_counters;
          Alcotest.test_case "stats pp" `Quick test_stats_pp_mentions_result_cache;
        ] );
      ("admission", [ Alcotest.test_case "shed and admit" `Quick test_admission ]);
      ( "dispatch",
        [
          Alcotest.test_case "matches the one-shot renderer" `Quick
            test_dispatch_matches_renderer;
          Alcotest.test_case "cache replay" `Quick test_dispatch_cache_replay;
          Alcotest.test_case "containment" `Quick test_dispatch_containment;
          Alcotest.test_case "load shed" `Quick test_dispatch_shed;
        ] );
      ( "server",
        [
          Alcotest.test_case "end to end" `Quick test_end_to_end;
          Alcotest.test_case "pipelined disconnect" `Quick
            test_pipelined_disconnect;
        ] );
    ]
