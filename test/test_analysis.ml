(* Integration tests: every experiment driver must reproduce its paper
   claims (all rows Pass or Info), and the registry must be consistent. *)

open Layered_core
open Layered_analysis

let check = Alcotest.(check bool)

(* Keep in sync with DESIGN.md's experiment index. *)
let expected_experiment_count = 20

let test_registry_ids () =
  let ids = List.map (fun (e : Registry.experiment) -> e.Registry.id) Registry.all in
  check "experiment count" true (List.length ids = expected_experiment_count);
  check "ids unique" true (List.length (List.sort_uniq compare ids) = List.length ids);
  check "lookup case-insensitive" true (Registry.find "e7" <> None);
  check "unknown id" true (Registry.find "E99" = None)

let experiment_case (e : Registry.experiment) =
  let run () =
    let rows = e.Registry.run () in
    check (e.Registry.id ^ " produced rows") true (rows <> []);
    List.iter
      (fun (r : Report.row) ->
        check
          (Printf.sprintf "%s %s (%s)" r.Report.id r.Report.claim r.Report.params)
          true
          (r.Report.status <> Report.Fail))
      rows
  in
  let speed = if List.mem e.Registry.id [ "E7"; "E8" ] then `Slow else `Quick in
  Alcotest.test_case e.Registry.id speed run

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_sweep () =
  List.iter
    (fun model ->
      let s = Sweep.run ~model ~n:3 ~t:1 ~depth:1 () in
      match s.Sweep.levels with
      | [ l0; l1 ] ->
          check (model ^ " depth 0 is one state") true (l0.Sweep.reachable = 1);
          check (model ^ " layers grow the space") true (l1.Sweep.reachable > 1);
          check (model ^ " layer sizes sane") true
            (l1.Sweep.layer_min >= 1 && l1.Sweep.layer_max >= l1.Sweep.layer_min)
      | _ -> Alcotest.fail "expected two levels")
    Sweep.models;
  Alcotest.check_raises "unknown model"
    (Invalid_argument "Sweep.run: unknown model \"nope\"") (fun () ->
      ignore (Sweep.run ~model:"nope" ~n:3 ~t:1 ~depth:1 ()))

module Budget = Layered_runtime.Budget

(* A budgeted sweep reports the completed level prefix of the unbudgeted
   run, flagged Truncated; a generous budget changes nothing. *)
let test_sweep_budget () =
  let full = Sweep.run ~model:"sync" ~n:4 ~t:1 ~depth:3 () in
  check "unbudgeted run is Complete" true (full.Sweep.status = Budget.Complete);
  let capped =
    Sweep.run ~budget:(Budget.create ~max_states:5 ()) ~model:"sync" ~n:4 ~t:1 ~depth:3
      ()
  in
  (match capped.Sweep.status with
  | Budget.Truncated { Budget.reason = Budget.States; _ } -> ()
  | _ -> Alcotest.fail "expected a States truncation");
  check "truncated rows are a strict prefix" true
    (List.length capped.Sweep.levels < List.length full.Sweep.levels);
  List.iteri
    (fun i (l : Sweep.level) -> check "prefix row matches" true (l = List.nth full.Sweep.levels i))
    capped.Sweep.levels;
  let generous =
    Sweep.run ~budget:(Budget.create ~max_states:10_000_000 ()) ~model:"sync" ~n:4 ~t:1
      ~depth:3 ()
  in
  check "generous budget is invisible" true
    (generous.Sweep.levels = full.Sweep.levels
    && generous.Sweep.status = Budget.Complete)

(* Budgeted checkers stop early and say so; verdict booleans cover the
   explored prefix only. *)
let test_checker_budget () =
  let protocol = Layered_protocols.Sync_floodset.make ~t:1 in
  let full = Consensus_check.check ~protocol ~n:3 ~t:1 ~rounds:3 () in
  check "unbudgeted check is Complete" true
    (full.Consensus_check.status = Budget.Complete);
  let capped =
    Consensus_check.check ~protocol ~n:3 ~t:1 ~rounds:3
      ~budget:(Budget.create ~max_states:10 ()) ()
  in
  (match capped.Consensus_check.status with
  | Budget.Truncated { Budget.reason = Budget.States; states_seen; _ } ->
      check "stopped near the cap" true (states_seen < full.Consensus_check.states_explored)
  | _ -> Alcotest.fail "expected a States truncation");
  check "explored fewer states" true
    (capped.Consensus_check.states_explored < full.Consensus_check.states_explored);
  let o =
    Omission_check.check ~protocol ~n:3 ~t:1 ~rounds:3
      ~budget:(Budget.create ~max_states:10 ()) ()
  in
  check "omission checker truncates too" true (o.Omission_check.status <> Budget.Complete)

(* The omission checker's budget-status paths, mirroring the consensus
   ones: Complete on an unbudgeted run, a States truncation charged per
   explored state under a tight cap, and a generous budget changing
   nothing at all. *)
let test_omission_budget_paths () =
  let protocol = Layered_protocols.Sync_coordinator.make ~t:1 in
  let full = Omission_check.check ~protocol ~n:3 ~t:1 ~rounds:6 () in
  check "unbudgeted omission check is Complete" true
    (full.Omission_check.status = Budget.Complete);
  check "coordinator verdicts hold" true
    (full.Omission_check.agreement_ok && full.Omission_check.validity_ok
   && full.Omission_check.termination_ok);
  let capped =
    Omission_check.check ~protocol ~n:3 ~t:1 ~rounds:6
      ~budget:(Budget.create ~max_states:10 ()) ()
  in
  (match capped.Omission_check.status with
  | Budget.Truncated { Budget.reason = Budget.States; states_seen; _ } ->
      check "charged per state: the trip lands at the cap, not far past it" true
        (states_seen >= 10 && states_seen < full.Omission_check.states_explored);
      check "truncated run explored a proper subset" true
        (capped.Omission_check.states_explored < full.Omission_check.states_explored)
  | Budget.Truncated _ -> Alcotest.fail "expected a States truncation"
  | Budget.Complete -> Alcotest.fail "max_states=10 failed to truncate");
  let generous =
    Omission_check.check ~protocol ~n:3 ~t:1 ~rounds:6
      ~budget:(Budget.create ~max_states:1_000_000 ()) ()
  in
  check "generous budget is invisible" true
    (generous.Omission_check.status = Budget.Complete
    && generous.Omission_check.states_explored = full.Omission_check.states_explored
    && generous.Omission_check.agreement_ok = full.Omission_check.agreement_ok
    && generous.Omission_check.worst_decision_round
       = full.Omission_check.worst_decision_round)

(* A raising experiment becomes a Fail row carrying the exception text;
   the other experiments still report. *)
let test_registry_exception_row () =
  let boom =
    { Registry.id = "EX"; title = "deliberately failing"; run = (fun () -> failwith "kaboom") }
  in
  let ok =
    {
      Registry.id = "EOK";
      title = "fine";
      run =
        (fun () ->
          [
            Report.row ~id:"EOK" ~claim:"c" ~params:"" ~expected:"x" ~measured:"x"
              Report.Pass;
          ]);
    }
  in
  let results = Registry.run_all [ boom; ok ] in
  check "both experiments report" true (List.length results = 2);
  (match results with
  | [ (_, [ row ]); (_, ok_rows) ] ->
      check "failing experiment yields a Fail row" true (row.Report.status = Report.Fail);
      check "row carries the exception text" true
        (contains row.Report.measured "kaboom");
      check "healthy experiment unaffected" true (Report.all_pass ok_rows)
  | _ -> Alcotest.fail "unexpected result shape");
  (* an exhausted budget skips not-yet-started experiments with Info rows *)
  let b = Budget.create () in
  Budget.cancel b;
  match Registry.run_all ~budget:b [ ok ] with
  | [ (_, [ row ]) ] ->
      check "skipped row is Info" true (row.Report.status = Report.Info);
      check "skipped row says why" true (contains row.Report.measured "interrupted")
  | _ -> Alcotest.fail "expected one skipped row"

module RtStats = Layered_runtime.Stats
module Pool = Layered_runtime.Pool
module Fault = Layered_runtime.Fault

let tmp_counter = ref 0

let with_tmp_dir f =
  incr tmp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "layered-test-analysis-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun x -> rm (Filename.concat path x)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm dir)
    (fun () -> f dir)

let pass_row id =
  Report.row ~id ~claim:"c" ~params:"" ~expected:"x" ~measured:"x" Report.Pass

(* The one retry of a raising experiment runs on the caller domain,
   outside the pool — a poisoned worker cannot fail it a second time. *)
let test_registry_retry_on_caller_domain () =
  let attempts = Atomic.make [] in
  let note () =
    let rec go () =
      let cur = Atomic.get attempts in
      if not (Atomic.compare_and_set attempts cur (Domain.self () :: cur)) then go ()
    in
    go ()
  in
  let flaky =
    {
      Registry.id = "EFLAKY";
      title = "raises on its first attempt";
      run =
        (fun () ->
          note ();
          if List.length (Atomic.get attempts) = 1 then failwith "flaky-once";
          [ pass_row "EFLAKY" ]);
    }
  in
  Pool.with_pool ~jobs:2 (fun pool ->
      match Registry.run_all ~pool [ flaky ] with
      | [ (_, [ pass; info ]) ] ->
          check "retry produced the Pass row" true (pass.Report.status = Report.Pass);
          check "Info row credits the out-of-pool rerun" true
            (info.Report.status = Report.Info
            && contains info.Report.measured "outside the pool");
          (match List.rev (Atomic.get attempts) with
          | [ _; second ] ->
              check "the retry ran on the caller domain" true (second = Domain.self ())
          | _ -> Alcotest.fail "expected exactly two attempts")
      | _ -> Alcotest.fail "expected one Pass plus one recovery Info row")

(* An injected worker crash mid-map must not cost any experiment its
   rows: the registry falls back to a serial rerun and says so. *)
let test_registry_survives_worker_crash () =
  let exps =
    List.init 8 (fun i ->
        let id = Printf.sprintf "EW%d" i in
        { Registry.id = id; title = "healthy"; run = (fun () -> [ pass_row id ]) })
  in
  Fault.arm ~seed:11 Fault.Worker_raise;
  let results =
    Fun.protect ~finally:Fault.disarm (fun () ->
        Pool.with_pool ~jobs:4 (fun pool -> Registry.run_all ~pool exps))
  in
  check "the injected crash fired" true (Fault.fired () = 1);
  check "every experiment reports" true (List.length results = 8);
  List.iter
    (fun ((e : Registry.experiment), rows) ->
      check (e.Registry.id ^ " kept its Pass row") true
        (List.exists (fun (r : Report.row) -> r.Report.status = Report.Pass) rows);
      check (e.Registry.id ^ " has no Fail row") true
        (List.for_all (fun (r : Report.row) -> r.Report.status <> Report.Fail) rows))
    results;
  check "the serial fallback left its Info row" true
    (List.exists
       (fun (_, rows) ->
         List.exists
           (fun (r : Report.row) -> contains r.Report.measured "reran serially")
           rows)
       results)

(* The failed attempt's counter delta is rolled back: only the attempt
   that produced the reported rows is reflected in the Stats snapshot. *)
let test_registry_retry_stats_rollback () =
  let calls = ref 0 in
  let e =
    {
      Registry.id = "EDELTA";
      title = "counts states";
      run =
        (fun () ->
          incr calls;
          if !calls = 1 then begin
            RtStats.add_states_expanded 1000;
            failwith "first attempt dies"
          end
          else begin
            RtStats.add_states_expanded 7;
            [ pass_row "EDELTA" ]
          end);
    }
  in
  let before = (RtStats.snapshot ()).RtStats.states_expanded in
  let results = Registry.run_all [ e ] in
  let after = (RtStats.snapshot ()).RtStats.states_expanded in
  check "experiment recovered" true
    (match results with
    | [ (_, rows) ] ->
        List.exists (fun (r : Report.row) -> r.Report.status = Report.Pass) rows
    | _ -> false);
  Alcotest.(check int) "only the successful attempt's work is counted" 7
    (after - before)

(* Resume skips experiments whose snapshot loads intact, and the
   resulting report is identical to an uninterrupted run. *)
let test_registry_checkpoint_resume () =
  with_tmp_dir (fun dir ->
      let e1_ran = ref 0 in
      let e1 =
        {
          Registry.id = "ER1";
          title = "t1";
          run =
            (fun () ->
              incr e1_ran;
              [ pass_row "ER1" ]);
        }
      in
      let e2 = { Registry.id = "ER2"; title = "t2"; run = (fun () -> [ pass_row "ER2" ]) } in
      (* the interrupted run finished only ER1 before dying *)
      ignore (Registry.run_all ~checkpoint:{ Registry.dir; resume = false } [ e1 ]);
      check "ER1 ran in the interrupted run" true (!e1_ran = 1);
      (* on resume ER1 must load from disk, never re-run *)
      let poisoned =
        { e1 with Registry.run = (fun () -> Alcotest.fail "ER1 re-ran despite a snapshot") }
      in
      let resumed =
        Registry.run_all ~checkpoint:{ Registry.dir; resume = true } [ poisoned; e2 ]
      in
      let reference = Registry.run_all [ e1; e2 ] in
      check "resumed rows identical to an uninterrupted run" true
        (List.map snd resumed = List.map snd reference))

(* A truncated sweep resumed under the same cap reproduces the truncated
   report exactly; resumed without the cap it completes to the
   uninterrupted rows. *)
let test_sweep_checkpoint_resume () =
  with_tmp_dir (fun dir ->
      let run ?budget ?(resume = false) ~ckpt () =
        let checkpoint =
          if ckpt then Some { Sweep.dir; every = 1; resume } else None
        in
        Sweep.run ?budget ?checkpoint ~model:"sync" ~n:4 ~t:1 ~depth:3 ()
      in
      let full = run ~ckpt:false () in
      let capped = run ~budget:(Budget.create ~max_states:5 ()) ~ckpt:true () in
      check "cap truncated the checkpointed run" true
        (capped.Sweep.status <> Budget.Complete);
      (* same cap on resume: consumption is re-imposed, so the report is
         reproduced bit for bit (and no new generation is written) *)
      let recapped =
        run ~budget:(Budget.create ~max_states:5 ()) ~ckpt:true ~resume:true ()
      in
      check "recapped resume reproduces the truncation" true
        (recapped.Sweep.levels = capped.Sweep.levels
        && recapped.Sweep.status = capped.Sweep.status);
      (* no cap on resume: completes to the uninterrupted rows *)
      let resumed = run ~ckpt:true ~resume:true () in
      check "uncapped resume completes" true (resumed.Sweep.status = Budget.Complete);
      check "resumed rows equal the uninterrupted sweep" true
        (resumed.Sweep.levels = full.Sweep.levels))

let test_chains () =
  (* Ever-bivalent models: chains complete; where every process moves
     each layer the decision deadline forces a violation, while the
     asynchronous shared-memory chains may instead starve one process
     forever (bivalent with nobody contradicting anyone). *)
  List.iter
    (fun (model, violation_forced) ->
      let c = Chains.run ~model ~n:3 ~t:1 ~length:5 in
      check (model ^ " complete") true c.Chains.complete;
      check (model ^ " lines") true (List.length c.Chains.lines = 5);
      if violation_forced then
        check (model ^ " forced violation") true
          (List.exists (fun l -> l.Chains.violation) c.Chains.lines))
    [ ("mobile", true); ("sm", false); ("mp", true); ("smp", false); ("iis", true) ];
  (* The crash model caps the chain at t states (bivalence dies at round
     t-1). *)
  let c = Chains.run ~model:"sync" ~n:4 ~t:2 ~length:5 in
  check "sync capped at t" true (List.length c.Chains.lines = 2);
  check "sync chain never violates agreement" true
    (List.for_all (fun l -> not l.Chains.violation) c.Chains.lines)

let test_export_dot () =
  let dot = Export.con0_similarity ~n:3 ~t:1 in
  check "graph header" true (contains dot "graph \"");
  check "eight nodes" true (contains dot "n7 [label=");
  check "has edges" true (contains dot " -- ");
  let layer = Export.st_layer ~n:3 ~t:1 in
  check "layer labels carry verdicts" true (contains layer "univalent");
  let task = Export.task_thickness ~name:"consensus" ~n:3 in
  check "consensus thickness has no edge" false (contains task " -- ");
  let identity = Export.task_thickness ~name:"identity" ~n:3 in
  check "identity thickness has edges" true (contains identity " -- ")

let () =
  Alcotest.run "layered_analysis"
    [
      ("registry", [ Alcotest.test_case "ids" `Quick test_registry_ids ]);
      ( "tools",
        [
          Alcotest.test_case "sweep" `Quick test_sweep;
          Alcotest.test_case "sweep under budget" `Quick test_sweep_budget;
          Alcotest.test_case "checkers under budget" `Quick test_checker_budget;
          Alcotest.test_case "omission budget paths" `Quick test_omission_budget_paths;
          Alcotest.test_case "registry isolates failures" `Quick
            test_registry_exception_row;
          Alcotest.test_case "retry runs on the caller domain" `Quick
            test_registry_retry_on_caller_domain;
          Alcotest.test_case "registry survives a worker crash" `Quick
            test_registry_survives_worker_crash;
          Alcotest.test_case "retry rolls back failed-attempt stats" `Quick
            test_registry_retry_stats_rollback;
          Alcotest.test_case "registry checkpoint resume" `Quick
            test_registry_checkpoint_resume;
          Alcotest.test_case "sweep checkpoint resume" `Quick
            test_sweep_checkpoint_resume;
          Alcotest.test_case "chains" `Quick test_chains;
          Alcotest.test_case "dot export" `Quick test_export_dot;
        ] );
      ("experiments", List.map experiment_case Registry.all);
    ]
