(* Integration tests: every experiment driver must reproduce its paper
   claims (all rows Pass or Info), and the registry must be consistent. *)

open Layered_core
open Layered_analysis

let check = Alcotest.(check bool)

(* Keep in sync with DESIGN.md's experiment index. *)
let expected_experiment_count = 20

let test_registry_ids () =
  let ids = List.map (fun (e : Registry.experiment) -> e.Registry.id) Registry.all in
  check "experiment count" true (List.length ids = expected_experiment_count);
  check "ids unique" true (List.length (List.sort_uniq compare ids) = List.length ids);
  check "lookup case-insensitive" true (Registry.find "e7" <> None);
  check "unknown id" true (Registry.find "E99" = None)

let experiment_case (e : Registry.experiment) =
  let run () =
    let rows = e.Registry.run () in
    check (e.Registry.id ^ " produced rows") true (rows <> []);
    List.iter
      (fun (r : Report.row) ->
        check
          (Printf.sprintf "%s %s (%s)" r.Report.id r.Report.claim r.Report.params)
          true
          (r.Report.status <> Report.Fail))
      rows
  in
  let speed = if List.mem e.Registry.id [ "E7"; "E8" ] then `Slow else `Quick in
  Alcotest.test_case e.Registry.id speed run

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_sweep () =
  List.iter
    (fun model ->
      let s = Sweep.run ~model ~n:3 ~t:1 ~depth:1 () in
      match s.Sweep.levels with
      | [ l0; l1 ] ->
          check (model ^ " depth 0 is one state") true (l0.Sweep.reachable = 1);
          check (model ^ " layers grow the space") true (l1.Sweep.reachable > 1);
          check (model ^ " layer sizes sane") true
            (l1.Sweep.layer_min >= 1 && l1.Sweep.layer_max >= l1.Sweep.layer_min)
      | _ -> Alcotest.fail "expected two levels")
    Sweep.models;
  Alcotest.check_raises "unknown model"
    (Invalid_argument "Sweep.run: unknown model \"nope\"") (fun () ->
      ignore (Sweep.run ~model:"nope" ~n:3 ~t:1 ~depth:1 ()))

module Budget = Layered_runtime.Budget

(* A budgeted sweep reports the completed level prefix of the unbudgeted
   run, flagged Truncated; a generous budget changes nothing. *)
let test_sweep_budget () =
  let full = Sweep.run ~model:"sync" ~n:4 ~t:1 ~depth:3 () in
  check "unbudgeted run is Complete" true (full.Sweep.status = Budget.Complete);
  let capped =
    Sweep.run ~budget:(Budget.create ~max_states:5 ()) ~model:"sync" ~n:4 ~t:1 ~depth:3
      ()
  in
  (match capped.Sweep.status with
  | Budget.Truncated { Budget.reason = Budget.States; _ } -> ()
  | _ -> Alcotest.fail "expected a States truncation");
  check "truncated rows are a strict prefix" true
    (List.length capped.Sweep.levels < List.length full.Sweep.levels);
  List.iteri
    (fun i (l : Sweep.level) -> check "prefix row matches" true (l = List.nth full.Sweep.levels i))
    capped.Sweep.levels;
  let generous =
    Sweep.run ~budget:(Budget.create ~max_states:10_000_000 ()) ~model:"sync" ~n:4 ~t:1
      ~depth:3 ()
  in
  check "generous budget is invisible" true
    (generous.Sweep.levels = full.Sweep.levels
    && generous.Sweep.status = Budget.Complete)

(* Budgeted checkers stop early and say so; verdict booleans cover the
   explored prefix only. *)
let test_checker_budget () =
  let protocol = Layered_protocols.Sync_floodset.make ~t:1 in
  let full = Consensus_check.check ~protocol ~n:3 ~t:1 ~rounds:3 () in
  check "unbudgeted check is Complete" true
    (full.Consensus_check.status = Budget.Complete);
  let capped =
    Consensus_check.check ~protocol ~n:3 ~t:1 ~rounds:3
      ~budget:(Budget.create ~max_states:10 ()) ()
  in
  (match capped.Consensus_check.status with
  | Budget.Truncated { Budget.reason = Budget.States; states_seen; _ } ->
      check "stopped near the cap" true (states_seen < full.Consensus_check.states_explored)
  | _ -> Alcotest.fail "expected a States truncation");
  check "explored fewer states" true
    (capped.Consensus_check.states_explored < full.Consensus_check.states_explored);
  let o =
    Omission_check.check ~protocol ~n:3 ~t:1 ~rounds:3
      ~budget:(Budget.create ~max_states:10 ()) ()
  in
  check "omission checker truncates too" true (o.Omission_check.status <> Budget.Complete)

(* The omission checker's budget-status paths, mirroring the consensus
   ones: Complete on an unbudgeted run, a States truncation charged per
   explored state under a tight cap, and a generous budget changing
   nothing at all. *)
let test_omission_budget_paths () =
  let protocol = Layered_protocols.Sync_coordinator.make ~t:1 in
  let full = Omission_check.check ~protocol ~n:3 ~t:1 ~rounds:6 () in
  check "unbudgeted omission check is Complete" true
    (full.Omission_check.status = Budget.Complete);
  check "coordinator verdicts hold" true
    (full.Omission_check.agreement_ok && full.Omission_check.validity_ok
   && full.Omission_check.termination_ok);
  let capped =
    Omission_check.check ~protocol ~n:3 ~t:1 ~rounds:6
      ~budget:(Budget.create ~max_states:10 ()) ()
  in
  (match capped.Omission_check.status with
  | Budget.Truncated { Budget.reason = Budget.States; states_seen; _ } ->
      check "charged per state: the trip lands at the cap, not far past it" true
        (states_seen >= 10 && states_seen < full.Omission_check.states_explored);
      check "truncated run explored a proper subset" true
        (capped.Omission_check.states_explored < full.Omission_check.states_explored)
  | Budget.Truncated _ -> Alcotest.fail "expected a States truncation"
  | Budget.Complete -> Alcotest.fail "max_states=10 failed to truncate");
  let generous =
    Omission_check.check ~protocol ~n:3 ~t:1 ~rounds:6
      ~budget:(Budget.create ~max_states:1_000_000 ()) ()
  in
  check "generous budget is invisible" true
    (generous.Omission_check.status = Budget.Complete
    && generous.Omission_check.states_explored = full.Omission_check.states_explored
    && generous.Omission_check.agreement_ok = full.Omission_check.agreement_ok
    && generous.Omission_check.worst_decision_round
       = full.Omission_check.worst_decision_round)

(* A raising experiment becomes a Fail row carrying the exception text;
   the other experiments still report. *)
let test_registry_exception_row () =
  let boom =
    { Registry.id = "EX"; title = "deliberately failing"; run = (fun () -> failwith "kaboom") }
  in
  let ok =
    {
      Registry.id = "EOK";
      title = "fine";
      run =
        (fun () ->
          [
            Report.row ~id:"EOK" ~claim:"c" ~params:"" ~expected:"x" ~measured:"x"
              Report.Pass;
          ]);
    }
  in
  let results = Registry.run_all [ boom; ok ] in
  check "both experiments report" true (List.length results = 2);
  (match results with
  | [ (_, [ row ]); (_, ok_rows) ] ->
      check "failing experiment yields a Fail row" true (row.Report.status = Report.Fail);
      check "row carries the exception text" true
        (contains row.Report.measured "kaboom");
      check "healthy experiment unaffected" true (Report.all_pass ok_rows)
  | _ -> Alcotest.fail "unexpected result shape");
  (* an exhausted budget skips not-yet-started experiments with Info rows *)
  let b = Budget.create () in
  Budget.cancel b;
  match Registry.run_all ~budget:b [ ok ] with
  | [ (_, [ row ]) ] ->
      check "skipped row is Info" true (row.Report.status = Report.Info);
      check "skipped row says why" true (contains row.Report.measured "interrupted")
  | _ -> Alcotest.fail "expected one skipped row"

let test_chains () =
  (* Ever-bivalent models: chains complete; where every process moves
     each layer the decision deadline forces a violation, while the
     asynchronous shared-memory chains may instead starve one process
     forever (bivalent with nobody contradicting anyone). *)
  List.iter
    (fun (model, violation_forced) ->
      let c = Chains.run ~model ~n:3 ~t:1 ~length:5 in
      check (model ^ " complete") true c.Chains.complete;
      check (model ^ " lines") true (List.length c.Chains.lines = 5);
      if violation_forced then
        check (model ^ " forced violation") true
          (List.exists (fun l -> l.Chains.violation) c.Chains.lines))
    [ ("mobile", true); ("sm", false); ("mp", true); ("smp", false); ("iis", true) ];
  (* The crash model caps the chain at t states (bivalence dies at round
     t-1). *)
  let c = Chains.run ~model:"sync" ~n:4 ~t:2 ~length:5 in
  check "sync capped at t" true (List.length c.Chains.lines = 2);
  check "sync chain never violates agreement" true
    (List.for_all (fun l -> not l.Chains.violation) c.Chains.lines)

let test_export_dot () =
  let dot = Export.con0_similarity ~n:3 ~t:1 in
  check "graph header" true (contains dot "graph \"");
  check "eight nodes" true (contains dot "n7 [label=");
  check "has edges" true (contains dot " -- ");
  let layer = Export.st_layer ~n:3 ~t:1 in
  check "layer labels carry verdicts" true (contains layer "univalent");
  let task = Export.task_thickness ~name:"consensus" ~n:3 in
  check "consensus thickness has no edge" false (contains task " -- ");
  let identity = Export.task_thickness ~name:"identity" ~n:3 in
  check "identity thickness has edges" true (contains identity " -- ")

let () =
  Alcotest.run "layered_analysis"
    [
      ("registry", [ Alcotest.test_case "ids" `Quick test_registry_ids ]);
      ( "tools",
        [
          Alcotest.test_case "sweep" `Quick test_sweep;
          Alcotest.test_case "sweep under budget" `Quick test_sweep_budget;
          Alcotest.test_case "checkers under budget" `Quick test_checker_budget;
          Alcotest.test_case "omission budget paths" `Quick test_omission_budget_paths;
          Alcotest.test_case "registry isolates failures" `Quick
            test_registry_exception_row;
          Alcotest.test_case "chains" `Quick test_chains;
          Alcotest.test_case "dot export" `Quick test_export_dot;
        ] );
      ("experiments", List.map experiment_case Registry.all);
    ]
