(* Integration tests: every experiment driver must reproduce its paper
   claims (all rows Pass or Info), and the registry must be consistent. *)

open Layered_core
open Layered_analysis

let check = Alcotest.(check bool)

(* Keep in sync with DESIGN.md's experiment index. *)
let expected_experiment_count = 20

let test_registry_ids () =
  let ids = List.map (fun (e : Registry.experiment) -> e.Registry.id) Registry.all in
  check "experiment count" true (List.length ids = expected_experiment_count);
  check "ids unique" true (List.length (List.sort_uniq compare ids) = List.length ids);
  check "lookup case-insensitive" true (Registry.find "e7" <> None);
  check "unknown id" true (Registry.find "E99" = None)

let experiment_case (e : Registry.experiment) =
  let run () =
    let rows = e.Registry.run () in
    check (e.Registry.id ^ " produced rows") true (rows <> []);
    List.iter
      (fun (r : Report.row) ->
        check
          (Printf.sprintf "%s %s (%s)" r.Report.id r.Report.claim r.Report.params)
          true
          (r.Report.status <> Report.Fail))
      rows
  in
  let speed = if List.mem e.Registry.id [ "E7"; "E8" ] then `Slow else `Quick in
  Alcotest.test_case e.Registry.id speed run

let test_sweep () =
  List.iter
    (fun model ->
      let s = Sweep.run ~model ~n:3 ~t:1 ~depth:1 () in
      match s.Sweep.levels with
      | [ l0; l1 ] ->
          check (model ^ " depth 0 is one state") true (l0.Sweep.reachable = 1);
          check (model ^ " layers grow the space") true (l1.Sweep.reachable > 1);
          check (model ^ " layer sizes sane") true
            (l1.Sweep.layer_min >= 1 && l1.Sweep.layer_max >= l1.Sweep.layer_min)
      | _ -> Alcotest.fail "expected two levels")
    Sweep.models;
  Alcotest.check_raises "unknown model"
    (Invalid_argument "Sweep.run: unknown model \"nope\"") (fun () ->
      ignore (Sweep.run ~model:"nope" ~n:3 ~t:1 ~depth:1 ()))

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_chains () =
  (* Ever-bivalent models: chains complete; where every process moves
     each layer the decision deadline forces a violation, while the
     asynchronous shared-memory chains may instead starve one process
     forever (bivalent with nobody contradicting anyone). *)
  List.iter
    (fun (model, violation_forced) ->
      let c = Chains.run ~model ~n:3 ~t:1 ~length:5 in
      check (model ^ " complete") true c.Chains.complete;
      check (model ^ " lines") true (List.length c.Chains.lines = 5);
      if violation_forced then
        check (model ^ " forced violation") true
          (List.exists (fun l -> l.Chains.violation) c.Chains.lines))
    [ ("mobile", true); ("sm", false); ("mp", true); ("smp", false); ("iis", true) ];
  (* The crash model caps the chain at t states (bivalence dies at round
     t-1). *)
  let c = Chains.run ~model:"sync" ~n:4 ~t:2 ~length:5 in
  check "sync capped at t" true (List.length c.Chains.lines = 2);
  check "sync chain never violates agreement" true
    (List.for_all (fun l -> not l.Chains.violation) c.Chains.lines)

let test_export_dot () =
  let dot = Export.con0_similarity ~n:3 ~t:1 in
  check "graph header" true (contains dot "graph \"");
  check "eight nodes" true (contains dot "n7 [label=");
  check "has edges" true (contains dot " -- ");
  let layer = Export.st_layer ~n:3 ~t:1 in
  check "layer labels carry verdicts" true (contains layer "univalent");
  let task = Export.task_thickness ~name:"consensus" ~n:3 in
  check "consensus thickness has no edge" false (contains task " -- ");
  let identity = Export.task_thickness ~name:"identity" ~n:3 in
  check "identity thickness has edges" true (contains identity " -- ")

let () =
  Alcotest.run "layered_analysis"
    [
      ("registry", [ Alcotest.test_case "ids" `Quick test_registry_ids ]);
      ( "tools",
        [
          Alcotest.test_case "sweep" `Quick test_sweep;
          Alcotest.test_case "chains" `Quick test_chains;
          Alcotest.test_case "dot export" `Quick test_export_dot;
        ] );
      ("experiments", List.map experiment_case Registry.all);
    ]
