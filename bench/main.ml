(* Benchmark harness.

   The paper has no tables or figures — its evaluation is its sequence of
   lemmas and theorems, each reproduced by an experiment in
   lib/analysis (see EXPERIMENTS.md).  Accordingly there is one Bechamel
   test per experiment kernel: the computation that regenerates the
   corresponding claim.  A few ablation benches (cache effectiveness,
   layer growth across substrates, serial vs multicore frontier
   exploration) quantify the design choices called out in DESIGN.md.

   Run with --smoke to execute every kernel exactly once (no Bechamel):
   a cheap liveness check that keeps bench code from bit-rotting.  Run
   with --json to execute every kernel once and emit one JSON object per
   kernel (name, instance parameters, wall time, states expanded,
   checkpoint snapshot bytes) for machine consumption. *)

open Bechamel
open Toolkit
open Layered_core
module Pool = Layered_runtime.Pool
module Frontier = Layered_runtime.Frontier
module Stats = Layered_runtime.Stats
module Budget = Layered_runtime.Budget

let values = [ Value.zero; Value.one ]

(* The budgeted kernels get a fresh generous budget per invocation — the
   same machinery the CLI uses, sized so it never trips on these
   instances (a tripped budget would silently bench a shorter run). *)
let bench_budget () = Budget.create ~timeout_s:60.0 ~max_states:5_000_000 ()

(* ------------------------------------------------------------------ *)
(* Shared instantiation helpers *)

let sync_engine protocol =
  let module P = (val protocol : Layered_sync.Protocol.S) in
  (module Layered_sync.Engine.Make (P) : Layered_sync.Engine.S)

(* The FloodSet-driven sync engine that most kernels share. *)
let make_sync_engine ~t = sync_engine (Layered_protocols.Sync_floodset.make ~t)

(* Domain pools for the multicore ablations, spawned on first use and
   shared across Bechamel runs (the pool is the fixture, parallel_map is
   the measured operation). *)
let pool_jobs = [ 1; 2; 4 ]
let pools = lazy (List.map (fun j -> (j, Pool.create ~jobs:j ())) pool_jobs)
let pool jobs = List.assoc jobs (Lazy.force pools)

let shutdown_pools () =
  if Lazy.is_val pools then List.iter (fun (_, p) -> Pool.shutdown p) (Lazy.force pools)

(* ------------------------------------------------------------------ *)
(* Kernels, one per experiment *)

(* E1: classify every initial state of the (3,1) S^t submodel with a cold
   valence engine. *)
let e1_classify_initials () =
  let module E = (val make_sync_engine ~t:1) in
  let succ = E.st ~t:1 in
  let v = Valence.create ~ident:E.ident (E.valence_spec ~succ) in
  List.iter
    (fun x -> ignore (Valence.classify v ~depth:3 x))
    (E.initial_states ~n:3 ~values)

(* E2: similarity connectivity of Con_0 (n = 4). *)
let e2_con0_similarity () =
  let module E = (val make_sync_engine ~t:1) in
  ignore (Connectivity.connected ~rel:E.similar (E.initial_states ~n:4 ~values))

(* E3: expand one S1 layer of the mobile model (n = 4). *)
let e3_s1_layer =
  let module E = (val make_sync_engine ~t:1) in
  let x = E.initial ~inputs:[| 0; 1; 1; 0 |] in
  fun () -> ignore (E.s1 ~record_failures:false x)

(* E3: valence connectivity of that layer, cold engine. *)
let e3_layer_valence () =
  let module E = (val make_sync_engine ~t:1) in
  let succ = E.s1 ~record_failures:false in
  let x = E.initial ~inputs:[| 0; 1; 1 |] in
  let v = Valence.create ~ident:E.ident (E.valence_spec ~succ) in
  ignore (Connectivity.valence_connected ~vals:(Valence.vals v ~depth:3) (succ x))

(* E4: the full ever-bivalent chain construction in M^mf. *)
let e4_bivalent_chain () =
  let module E = (val make_sync_engine ~t:1) in
  let succ = E.s1 ~record_failures:false in
  let v = Valence.create ~ident:E.ident (E.valence_spec ~succ) in
  let classify x = Valence.classify v ~depth:3 x in
  let x0 =
    Option.get (Layering.find_bivalent ~classify (E.initial_states ~n:3 ~values))
  in
  ignore (Layering.bivalent_chain ~classify ~succ ~length:8 x0)

(* E5: expand one S^rw layer (n = 3). *)
let e5_srw_layer =
  let module P = (val Layered_protocols.Sm_voting.make ~horizon:2) in
  let module E = Layered_async_sm.Engine.Make (P) in
  let x = E.initial ~inputs:[| 0; 1; 1 |] in
  fun () -> ignore (E.srw x)

(* E5: the Lemma 5.3 bridge states. *)
let e5_bridge =
  let module P = (val Layered_protocols.Sm_voting.make ~horizon:2) in
  let module E = Layered_async_sm.Engine.Make (P) in
  let open Layered_async_sm.Engine in
  let x = E.initial ~inputs:[| 0; 1; 1 |] in
  fun () ->
    List.iter
      (fun j ->
        let y = E.apply (E.apply x { slow = j; mode = Read_late 3 }) { slow = j; mode = Absent } in
        let y' = E.apply (E.apply x { slow = j; mode = Absent }) { slow = j; mode = Read_late 0 } in
        ignore (E.agree_modulo y y' j))
      [ 1; 2; 3 ]

(* E6: expand one S^per layer (n = 3; 18 schedules). *)
let e6_sper_layer =
  let module P = (val Layered_protocols.Mp_floodset.make ~horizon:2) in
  let module E = Layered_async_mp.Engine.Make (P) in
  let x = E.initial ~inputs:[| 0; 1; 1 |] in
  fun () -> ignore (E.sper x)

(* E6: all six FLP diamonds at the initial state. *)
let e6_diamond =
  let module P = (val Layered_protocols.Mp_floodset.make ~horizon:2) in
  let module E = Layered_async_mp.Engine.Make (P) in
  let x = E.initial ~inputs:[| 0; 1; 1 |] in
  let solo p = List.map (fun i -> Layered_async_mp.Engine.Solo i) p in
  let perms = Layered_async_mp.Engine.permutations [ 1; 2; 3 ] in
  fun () ->
    List.iter
      (fun p ->
        let front = List.filteri (fun i _ -> i < 2) p in
        let last = List.nth p 2 in
        let lhs = E.apply (E.apply x (solo p)) (solo front) in
        let rhs = E.apply (E.apply x (solo front)) (solo (last :: front)) in
        ignore (E.equal lhs rhs))
      perms

(* E7: exhaustive verification of FloodSet against all (3,1) crash
   adversaries. *)
let e7_verify_floodset () =
  ignore
    (Layered_analysis.Consensus_check.check
       ~protocol:(Layered_protocols.Sync_floodset.make ~t:1)
       ~n:3 ~t:1 ~rounds:3 ~budget:(bench_budget ()) ())

(* E7: the Lemma 6.1 chain plus the Lemma 6.2 round-t scan, (4,2). *)
let e7_lower_bound_chain () =
  let module E = (val make_sync_engine ~t:2) in
  let succ = E.st ~t:2 in
  let v = Valence.create ~ident:E.ident (E.valence_spec ~succ) in
  let classify x = Valence.classify v ~depth:4 x in
  let x0 =
    Option.get (Layering.find_bivalent ~classify (E.initial_states ~n:4 ~values))
  in
  let chain = Layering.bivalent_chain ~classify ~succ ~length:2 x0 in
  match List.rev chain.Layering.states with
  | last :: _ -> List.iter (fun y -> ignore (E.terminal y)) (succ last)
  | [] -> ()

(* E8: the clean-round univalence sweep, (3,1). *)
let e8_clean_round () =
  let module E = (val sync_engine (Layered_protocols.Sync_early.make ~t:1)) in
  let succ = E.st ~t:1 in
  let v = Valence.create ~ident:E.ident (E.valence_spec ~succ) in
  let spec = { Explore.succ; key = E.key } in
  List.iter
    (fun x0 ->
      List.iter
        (fun x ->
          if x.E.round <= 1 then
            ignore (Valence.classify v ~depth:3 (E.apply ~record_failures:true x [])))
        (Explore.reachable spec ~depth:1 x0))
    (E.initial_states ~n:3 ~values)

(* E9: the exhaustive 1-thick-connectivity condition for binary consensus
   (n = 3: 8 assignments, every similarity-connected subset). *)
let e9_thick_consensus () =
  let task = Layered_topology.Task.consensus ~n:3 ~values in
  ignore (Layered_topology.Solvability.passes_necessary_condition task)

(* E9: same for 2-set agreement over three values (the solvable side). *)
let e9_thick_kset () =
  let task =
    Layered_topology.Task.k_set_agreement ~n:3 ~k:2 ~values:[ 0; 1; 2 ]
  in
  ignore (Layered_topology.Solvability.passes_necessary_condition task)

(* E10: level-1 similarity diameter of the (4,1) S^t image. *)
let e10_diameter () =
  let module E = (val make_sync_engine ~t:1) in
  let succ = E.st ~t:1 in
  let layers = List.concat_map succ (E.initial_states ~n:4 ~values) in
  let seen = Hashtbl.create 256 in
  let x1 =
    List.filter
      (fun x ->
        let k = E.key x in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      layers
  in
  ignore (Connectivity.diameter ~rel:E.similar x1)

(* E11: explore the 2-set agreement protocol from one mixed input. *)
let e11_kset_explore () =
  let module P = (val Layered_protocols.Mp_kset.make ~n:3) in
  let module E = Layered_async_mp.Engine.Make (P) in
  let spec = { Explore.succ = E.sper; key = E.key } in
  ignore (Explore.count_reachable spec ~depth:2 (E.initial ~inputs:[| 0; 1; 2 |]))

(* E12: one covering-valence classification over three-valued inputs. *)
let e12_covering_classify () =
  let module E = (val make_sync_engine ~t:1) in
  let succ = E.st ~t:1 in
  let all = Pid.all 3 in
  let unanimous v =
    Layered_topology.Simplex.of_assoc (List.map (fun p -> (p, v)) all)
  in
  let cover =
    Layered_topology.Covering.of_complexes
      (Layered_topology.Complex.of_simplexes [ unanimous 0; unanimous 1 ])
      (Layered_topology.Complex.of_simplexes [ unanimous 2 ])
  in
  let output x =
    let decs = E.decisions x in
    Layered_topology.Simplex.of_assoc
      (List.filter_map
         (fun i ->
           if x.E.failed.(i - 1) then None
           else match decs.(i - 1) with Some v -> Some (i, v) | None -> None)
         all)
  in
  let engine =
    Layered_topology.Covering.create
      { Layered_topology.Covering.succ; key = E.key; terminal = E.terminal; output }
      cover
  in
  ignore
    (Layered_topology.Covering.classify engine ~depth:3
       (E.initial ~inputs:[| 1; 2; 2 |]))

(* E13: expand one IIS layer (13 ordered partitions at n = 3). *)
let e13_iis_layer =
  let module P = (val Layered_protocols.Iis_voting.make ~horizon:2) in
  let module E = Layered_iis.Engine.Make (P) in
  let x = E.initial ~inputs:[| 0; 1; 1 |] in
  fun () -> ignore (E.layer x)

(* E14: a full-information valence classification (views, not digests). *)
let e14_full_info_classify () =
  let module E = (val sync_engine (Layered_protocols.Full_info.sync ~horizon:2)) in
  let succ = E.s1 ~record_failures:false in
  let v = Valence.create ~ident:E.ident (E.valence_spec ~succ) in
  ignore (Valence.classify v ~depth:3 (E.initial ~inputs:[| 0; 1; 1 |]))

(* E15: build the Kripke structure and one common-belief fixpoint.
   (Needs the protocol module P for per-process local keys, so it cannot
   use the packed make_sync_engine helper.) *)
let e15_common_belief () =
  let module P = (val Layered_protocols.Sync_floodset.make ~t:1) in
  let module E = Layered_sync.Engine.Make (P) in
  let worlds = ref [] in
  let seen = Hashtbl.create 1024 in
  let rec explore x =
    let k = E.key x in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      worlds := x :: !worlds;
      if x.E.round < 3 then
        List.iter
          (fun a -> explore (E.apply ~record_failures:true x a))
          (E.all_actions ~max_new:2 ~remaining_failures:(1 - E.failed_count x) x)
    end
  in
  List.iter explore (E.initial_states ~n:3 ~values);
  let module Kripke = Layered_knowledge.Kripke in
  let kr =
    Kripke.create ~n:3 ~key:E.key
      ~local_key:(fun i (x : E.state) -> P.key x.E.locals.(i - 1))
      !worlds
  in
  let phi =
    Kripke.prop_of kr (fun x -> Vset.cardinal (E.decided_vset x) <= 1)
  in
  ignore
    (Kripke.common_belief kr ~members:E.nonfailed
       ~alive:(fun i (x : E.state) -> not x.E.failed.(i - 1))
       phi)

(* E16: exhaustive verification of the clean-round protocol. *)
let e16_clean_verify () =
  ignore
    (Layered_analysis.Consensus_check.check
       ~protocol:(Layered_protocols.Sync_clean.make ~t:1)
       ~n:3 ~t:1 ~rounds:3 ~budget:(bench_budget ()) ())

(* E17: expand one two-omitter mobile layer. *)
let e17_multi_layer =
  let module E = (val make_sync_engine ~t:1) in
  let x = E.initial ~inputs:[| 0; 1; 1 |] in
  fun () -> ignore (E.s_multi ~omitters:2 x)

(* E18: exhaustive verification of the coordinator under send-omission. *)
let e18_omission_verify () =
  ignore
    (Layered_analysis.Omission_check.check
       ~protocol:(Layered_protocols.Sync_coordinator.make ~t:1)
       ~n:3 ~t:1 ~rounds:7 ~budget:(bench_budget ()) ())

(* ------------------------------------------------------------------ *)
(* Ablations *)

(* Valence memoisation: cold engine per call vs shared engine.  The cold
   engine is budgeted, measuring the probe overhead on the miss path. *)
let ablation_valence_cold () =
  let module E = (val make_sync_engine ~t:1) in
  let succ = E.st ~t:1 in
  let v = Valence.create ~budget:(bench_budget ()) ~ident:E.ident (E.valence_spec ~succ) in
  let x = E.initial ~inputs:[| 0; 1; 1 |] in
  ignore (Valence.classify v ~depth:3 x)

let ablation_valence_warm =
  let module E = (val make_sync_engine ~t:1) in
  let succ = E.st ~t:1 in
  let v = Valence.create ~ident:E.ident (E.valence_spec ~succ) in
  let x = E.initial ~inputs:[| 0; 1; 1 |] in
  ignore (Valence.classify v ~depth:3 x);
  fun () -> ignore (Valence.classify v ~depth:3 x)

(* Layer growth: states reachable in two layers, per substrate (via the
   budgeted entry point, measuring the budget probes too). *)
let ablation_growth_sync () =
  let module E = (val make_sync_engine ~t:1) in
  let spec = { Explore.succ = E.st ~t:1; key = E.key } in
  ignore
    (Explore.count_reachable_outcome ~budget:(bench_budget ()) spec ~depth:2
       (E.initial ~inputs:[| 0; 1; 1 |]))

let ablation_growth_sm () =
  let module P = (val Layered_protocols.Sm_voting.make ~horizon:2) in
  let module E = Layered_async_sm.Engine.Make (P) in
  let spec = { Explore.succ = E.srw; key = E.key } in
  ignore
    (Explore.count_reachable_outcome ~budget:(bench_budget ()) spec ~depth:2
       (E.initial ~inputs:[| 0; 1; 1 |]))

let ablation_growth_mp () =
  let module P = (val Layered_protocols.Mp_floodset.make ~horizon:2) in
  let module E = Layered_async_mp.Engine.Make (P) in
  let spec = { Explore.succ = E.sper; key = E.key } in
  ignore
    (Explore.count_reachable_outcome ~budget:(bench_budget ()) spec ~depth:2
       (E.initial ~inputs:[| 0; 1; 1 |]))

(* Multicore frontier exploration: the serial Explore BFS vs the pooled
   level-synchronous Frontier at 1/2/4 domains, same (4,1) S^t image. *)
let ablation_frontier_serial =
  let module E = (val make_sync_engine ~t:1) in
  let spec = { Explore.succ = E.st ~t:1; key = E.key } in
  let x = E.initial ~inputs:[| 0; 1; 1; 0 |] in
  fun () -> ignore (Explore.count_reachable spec ~depth:2 x)

let ablation_frontier jobs =
  let module E = (val make_sync_engine ~t:1) in
  let succ = E.st ~t:1 in
  let x = E.initial ~inputs:[| 0; 1; 1; 0 |] in
  fun () ->
    ignore
      (Frontier.count_reachable ~budget:(bench_budget ()) (pool jobs) ~succ ~key:E.key
         ~depth:2 x)

(* Multicore E1: classify every (3,1) initial state, one cold valence
   engine per state, fanned across the pool. *)
let ablation_e1_pool jobs =
  let module E = (val make_sync_engine ~t:1) in
  let succ = E.st ~t:1 in
  let initials = E.initial_states ~n:3 ~values in
  fun () ->
    Pool.parallel_iter (pool jobs)
      (fun x ->
        let v = Valence.create ~ident:E.ident (E.valence_spec ~succ) in
        ignore (Valence.classify v ~depth:3 x))
      initials

(* ------------------------------------------------------------------ *)
(* Checkpoint kernels: the same (4,1) frontier instance as
   ablation/frontier-jobs1, once with a sink persisting a snapshot at
   every level boundary (the delta against that baseline is the
   write-path overhead: marshal, CRC, tmp write, rename) and once
   resuming from a mid-run generation (the restore path: validate,
   decode, re-seed the dedup table, finish the run).  The last snapshot
   size lands in the --json record via [last_ckpt_bytes]. *)

module Ckpt = Layered_runtime.Checkpoint

let last_ckpt_bytes = Atomic.make 0

let ckpt_bench_dir sub =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "layered-bench-ckpt-%d-%s" (Unix.getpid ()) sub)

let rm_ckpt_dir dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let checkpoint_write =
  let module E = (val make_sync_engine ~t:1) in
  let succ = E.st ~t:1 in
  let x = E.initial ~inputs:[| 0; 1; 1; 0 |] in
  let dir = ckpt_bench_dir "write" in
  fun () ->
    rm_ckpt_dir dir;
    let save snap =
      let saved =
        Ckpt.save ~dir ~name:"bench-write"
          ~meta:(Ckpt.make_meta ~progress:(List.length snap.Frontier.levels) ())
          ~payload:(Marshal.to_string snap [])
      in
      Atomic.set last_ckpt_bytes saved.Ckpt.bytes
    in
    ignore
      (Frontier.count_reachable ~budget:(bench_budget ())
         ~checkpoint:{ Frontier.every = 1; save } (pool 1) ~succ ~key:E.key
         ~depth:2 x)

let checkpoint_restore =
  let module E = (val make_sync_engine ~t:1) in
  let succ = E.st ~t:1 in
  let x = E.initial ~inputs:[| 0; 1; 1; 0 |] in
  let dir = ckpt_bench_dir "restore" in
  (* Fixture: one mid-run generation (levels 0-1 delivered, level 2
     still to discover), written once and reloaded on every run. *)
  let fixture =
    lazy
      (rm_ckpt_dir dir;
       let save snap =
         if List.length snap.Frontier.levels = 2 then
           ignore
             (Ckpt.save ~dir ~name:"bench-restore"
                ~meta:(Ckpt.make_meta ~progress:2 ())
                ~payload:(Marshal.to_string snap []))
       in
       ignore
         (Frontier.count_reachable ~checkpoint:{ Frontier.every = 1; save }
            (pool 1) ~succ ~key:E.key ~depth:2 x))
  in
  fun () ->
    Lazy.force fixture;
    match Ckpt.load_latest ~dir ~name:"bench-restore" with
    | None -> failwith "checkpoint/restore: fixture generation missing"
    | Some loaded ->
        Atomic.set last_ckpt_bytes (String.length loaded.Ckpt.payload);
        let snap = (Marshal.from_string loaded.Ckpt.payload 0 : _ Frontier.snapshot) in
        ignore
          (Frontier.count_reachable ~budget:(bench_budget ()) ~resume:snap
             (pool 1) ~succ ~key:E.key ~depth:2 x)

let cleanup_ckpt_dirs () =
  List.iter
    (fun sub -> rm_ckpt_dir (ckpt_bench_dir sub))
    [ "write"; "restore"; "oocore-spill" ]

(* ------------------------------------------------------------------ *)
(* Out-of-core frontier: one (6,1) synchronic-MP instance — the largest
   bench instance, big enough that the pooled frontier pays off —
   explored serially, with the pooled Frontier at 1 and 4 domains, and
   with the pooled Frontier forced to spill every level's dedup shards
   and undelivered prefix to disk ([Always], no memory pressure
   required).  The serial/jobs trio gives the speedup curve CI watches;
   the spill kernel's delta against jobs-4 is the out-of-core tax:
   marshal + CRC + write + read-back validation + fingerprint probes on
   every subsequent level. *)

module Oocore_P = (val Layered_protocols.Sync_floodset.make ~t:1)
module Oocore_E = Layered_async_mp.Synchronic.Make (Oocore_P)

let oocore_x0 =
  Oocore_E.initial
    ~inputs:(Array.init 6 (fun i -> if i = 0 then Value.zero else Value.one))

let oocore_serial () =
  ignore
    (Explore.count_reachable
       { Explore.succ = Oocore_E.smp; key = Oocore_E.key }
       ~depth:2 oocore_x0)

let oocore_jobs jobs () =
  ignore
    (Frontier.count_reachable ~budget:(bench_budget ()) (pool jobs)
       ~succ:Oocore_E.smp ~key:Oocore_E.key ~depth:2 oocore_x0)

let oocore_spill () =
  let dir = ckpt_bench_dir "oocore-spill" in
  rm_ckpt_dir dir;
  let spill = { Frontier.spill_dir = dir; spill_mode = Frontier.Always } in
  ignore
    (Frontier.count_reachable ~budget:(bench_budget ()) ~spill (pool 4)
       ~succ:Oocore_E.smp ~key:Oocore_E.key ~depth:2 oocore_x0)

(* ------------------------------------------------------------------ *)
(* Similarity-graph construction: the all-pairs reference vs the
   signature-bucketed builder, on the same fixture — the deduped
   depth-2 reachable set of the (4,1) S^t submodel (the largest smoke
   instance).  The fixture is shared and forced before any kernel runs
   so neither timing includes the BFS. *)

module Sim_E = (val make_sync_engine ~t:1)

let simgraph_states =
  lazy
    (let spec = { Explore.succ = Sim_E.st ~t:1; key = Sim_E.key } in
     let seen = Hashtbl.create 4096 in
     List.filter
       (fun x ->
         let k = Sim_E.ident x in
         if Hashtbl.mem seen k then false
         else begin
           Hashtbl.add seen k ();
           true
         end)
       (List.concat_map
          (fun x0 -> Explore.reachable spec ~depth:2 x0)
          (Sim_E.initial_states ~n:4 ~values)))

let simgraph_pairwise () =
  ignore
    (Sim_E.similarity_graph ~builder:Simgraph.Pairwise (Lazy.force simgraph_states))

let simgraph_bucketed () =
  ignore
    (Sim_E.similarity_graph ~builder:Simgraph.Bucketed (Lazy.force simgraph_states))

(* Valence cache keying: the same cold (3,1) classification with the
   memo table keyed by rebuilt canonical key strings vs the packed
   statevec identity, with successors answered from the precomputed
   table ([st_tab]).  The valence recursion revisits states across
   classify calls, which is exactly where the packed id + successor
   memo pay off — CI asserts the crossover (interned strictly faster). *)
(* Each round is a fresh analysis (its own valence cache) over one
   shared engine — the registry's usage pattern.  The string-key leg
   recomputes every successor list and rebuilds every memo key per
   round; the interned leg answers successors from the engine's packed
   successor table and keys its memo by the arena id. *)
let valence_rounds = 5

let valence_string_key () =
  let module E = (val make_sync_engine ~t:1) in
  let succ = E.st ~t:1 in
  for _ = 1 to valence_rounds do
    let v = Valence.create (E.valence_spec ~succ) in
    List.iter
      (fun x -> ignore (Valence.classify v ~depth:4 x))
      (E.initial_states ~n:4 ~values)
  done

let valence_interned () =
  let module E = (val make_sync_engine ~t:1) in
  let succ = E.st_tab ~t:1 in
  for _ = 1 to valence_rounds do
    let v = Valence.create ~ident:E.vec_ident (E.valence_spec ~succ) in
    List.iter
      (fun x -> ignore (Valence.classify v ~depth:4 x))
      (E.initial_states ~n:4 ~values)
  done

(* ------------------------------------------------------------------ *)
(* Symmetry reduction: the same IIS sweep unreduced vs quotiented by
   role-respecting process renamings.  Reported rows are byte-identical
   (orbit-weighted counts); the reduction shows up as strictly fewer
   states expanded — the JSON "states" field CI gates on.  The oocore
   pair runs the larger (5,1) instance through the pooled frontier; the
   sym kernel must materialise strictly fewer states than its
   unreduced twin. *)

let with_symmetry sym f =
  Canon.set_enabled sym;
  Fun.protect ~finally:(fun () -> Canon.set_enabled false) f

let symmetry_sweep ~sym () =
  with_symmetry sym (fun () ->
      ignore
        (Layered_analysis.Sweep.run ~budget:(bench_budget ()) ~model:"iis" ~n:4
           ~t:2 ~depth:4 ()))

let oocore_iis ~sym jobs () =
  with_symmetry sym (fun () ->
      ignore
        (Layered_analysis.Sweep.run ~pool:(pool jobs)
           ~budget:(bench_budget ()) ~model:"iis" ~n:5 ~t:1 ~depth:2 ()))


(* ------------------------------------------------------------------ *)
(* Serve-daemon cache ablation: the same classification query the
   daemon answers, once rebuilding the valence engines from scratch per
   request (what a one-shot CLI run pays) and once against the shared
   per-model classifier cache the daemon keeps across requests.  The
   warm kernel must beat the cold one — the gap is the entire point of
   running a persistent server. *)

module Valence_query = Layered_analysis.Valence_query

let serve_valence_cold () =
  ignore (Valence_query.run ~model:"sync" ~n:3 ~t:1 ~depth:3 ())

let serve_valence_warm =
  let cache = Valence_query.create_cache () in
  ignore (Valence_query.run ~cache ~model:"sync" ~n:3 ~t:1 ~depth:3 ());
  fun () -> ignore (Valence_query.run ~cache ~model:"sync" ~n:3 ~t:1 ~depth:3 ())

(* Warm-after-restart: the crash-recovery payoff.  Setup warms a
   spillable cache pair and spills it to disk once; the kernel then
   plays a freshly respawned daemon — empty caches, reload the spill,
   answer the same query.  The reload (checkpoint read + lazy memo
   promotion) must beat serve/cold-valence's recomputation, or warm
   recovery would be pointless. *)
let serve_spill_dir =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "lsrv-bench-%d" (Unix.getpid ()))

(* Forced by [force_fixtures], outside any timed window: the spill on
   disk is the fixture, not part of the recovery being measured. *)
let serve_spill_fixture =
  lazy
    (let rcache = Layered_serve.Cache.create () in
     let vcache = Valence_query.create_cache ~spill:true () in
     ignore (Valence_query.run ~cache:vcache ~model:"sync" ~n:3 ~t:1 ~depth:3 ());
     match Layered_serve.Spill.save ~dir:serve_spill_dir ~rcache ~vcache () with
     | Ok _ -> ()
     | Error e -> failwith ("bench spill: " ^ e))

let serve_warm_after_restart () =
  Lazy.force serve_spill_fixture;
  let rcache = Layered_serve.Cache.create () in
  let vcache = Valence_query.create_cache ~spill:true () in
  ignore (Layered_serve.Spill.load ~dir:serve_spill_dir ~rcache ~vcache : int);
  ignore (Valence_query.run ~cache:vcache ~model:"sync" ~n:3 ~t:1 ~depth:3 ())

let force_fixtures () =
  ignore (Lazy.force simgraph_states);
  Lazy.force serve_spill_fixture

(* ------------------------------------------------------------------ *)
(* Saturation: k clients pipelining m mixed cold queries each against a
   real in-process daemon.  The same workload runs twice — a jobs=1
   daemon answers strictly in arrival order, a jobs=4 daemon fans the
   flights out across its pool — so the seq/conc gap is exactly the
   payoff of concurrent dispatch under multi-client load.  Every
   (client, request) pair carries a distinct cache key: the result
   cache and single-flight coalescing would otherwise flatten the
   comparison into a cache microbenchmark. *)

(* 4 clients x 6 queries, 24 distinct (model, n, depth) triples, each
   5-250 ms of cold classification at t=1. *)
let saturation_matrix =
  [|
    [ ("sync", 4, 5); ("mobile", 4, 4); ("sm", 3, 4);
      ("iis", 3, 3); ("mp", 3, 3); ("smp", 3, 3) ];
    [ ("sync", 4, 6); ("mobile", 4, 5); ("sm", 4, 3);
      ("iis", 4, 3); ("mp", 3, 4); ("smp", 3, 4) ];
    [ ("sync", 5, 4); ("mobile", 5, 4); ("sm", 4, 4);
      ("iis", 3, 4); ("sm", 5, 3); ("smp", 4, 3) ];
    [ ("sync", 5, 5); ("mobile", 6, 4); ("sm", 3, 5);
      ("iis", 4, 4); ("sync", 6, 5); ("mobile", 5, 5) ];
  |]

let serve_saturation ~jobs () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "lsrv-bench-sat-%d-%d.sock" (Unix.getpid ()) jobs)
  in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let cfg =
    {
      (Layered_serve.Server.default_config ~socket_path:path) with
      jobs;
      request_timeout_s = 0.;
      install_signals = false;
    }
  in
  let dom = Domain.spawn (fun () -> Layered_serve.Server.run cfg) in
  let rec wait n =
    if Sys.file_exists path then ()
    else if n = 0 then failwith "saturation bench: server socket never appeared"
    else begin
      Unix.sleepf 0.01;
      wait (n - 1)
    end
  in
  wait 1_000;
  let clients =
    Array.mapi
      (fun i queries ->
        Domain.spawn (fun () ->
            match Layered_serve.Client.connect path with
            | Error e -> failwith ("saturation bench connect: " ^ e)
            | Ok c ->
                Fun.protect
                  ~finally:(fun () -> Layered_serve.Client.close c)
                  (fun () ->
                    (* pipeline the whole batch, then collect: up to
                       k*m requests in flight at once *)
                    List.iteri
                      (fun j (model, n, depth) ->
                        let line =
                          Layered_serve.Protocol.encode_request
                            ~id:((i * 100) + j)
                            (Layered_serve.Protocol.Classify_valence
                               { model; n; t = 1; depth })
                        in
                        match Layered_serve.Client.send c line with
                        | Ok () -> ()
                        | Error e -> failwith ("saturation bench send: " ^ e))
                      queries;
                    match
                      Layered_serve.Client.read_lines c
                        ~n:(List.length queries) ~timeout_s:300.
                    with
                    | Ok _ -> ()
                    | Error e -> failwith ("saturation bench read: " ^ e))))
      saturation_matrix
  in
  Array.iter Domain.join clients;
  (match Layered_serve.Client.connect path with
  | Error e -> failwith ("saturation bench shutdown connect: " ^ e)
  | Ok c ->
      Fun.protect
        ~finally:(fun () -> Layered_serve.Client.close c)
        (fun () ->
          match
            Layered_serve.Client.request c Layered_serve.Protocol.Shutdown
              ~timeout_s:30.
          with
          | Ok _ -> ()
          | Error e -> failwith ("saturation bench shutdown: " ^ e)));
  match Domain.join dom with
  | 0 -> ()
  | code -> failwith (Printf.sprintf "saturation bench daemon exited %d" code)

let serve_saturation_seq () = serve_saturation ~jobs:1 ()
let serve_saturation_conc () = serve_saturation ~jobs:4 ()

(* ------------------------------------------------------------------ *)
(* Chaos-layer overhead: the fault sites threaded through the hot paths
   must be free when injection is disarmed (the production state, and
   always the state here).  One million probes of the disabled fast
   path — a flag read and a branch each — so the per-probe cost lands
   in the --json record where CI can watch it. *)

module Fault = Layered_runtime.Fault

let chaos_point_disabled () =
  for _ = 1 to 1_000_000 do
    if Fault.point Fault.Drop_successor then assert false
  done

let chaos_mangle_disabled =
  let level = [ 1; 2; 3 ] in
  fun () ->
    for _ = 1 to 1_000_000 do
      ignore (Fault.mangle_level level)
    done

(* ------------------------------------------------------------------ *)
(* Harness *)

(* Each kernel carries the instance parameters it exercises so that
   machine-readable output (--json) is self-describing. *)
type kernel = { name : string; n : int; t : int; depth : int; fn : unit -> unit }

let kernels =
  [
    { name = "E1/classify-initials"; n = 3; t = 1; depth = 3; fn = e1_classify_initials };
    { name = "E2/con0-similarity"; n = 4; t = 1; depth = 0; fn = e2_con0_similarity };
    { name = "E3/s1-layer"; n = 4; t = 1; depth = 1; fn = e3_s1_layer };
    { name = "E3/layer-valence"; n = 3; t = 1; depth = 3; fn = e3_layer_valence };
    { name = "E4/bivalent-chain"; n = 3; t = 1; depth = 3; fn = e4_bivalent_chain };
    { name = "E5/srw-layer"; n = 3; t = 2; depth = 1; fn = e5_srw_layer };
    { name = "E5/bridge"; n = 3; t = 2; depth = 2; fn = e5_bridge };
    { name = "E6/sper-layer"; n = 3; t = 2; depth = 1; fn = e6_sper_layer };
    { name = "E6/diamond"; n = 3; t = 2; depth = 2; fn = e6_diamond };
    { name = "E7/verify-floodset"; n = 3; t = 1; depth = 3; fn = e7_verify_floodset };
    { name = "E7/lower-bound-chain"; n = 4; t = 2; depth = 4; fn = e7_lower_bound_chain };
    { name = "E8/clean-round"; n = 3; t = 1; depth = 3; fn = e8_clean_round };
    { name = "E9/thick-consensus"; n = 3; t = 1; depth = 0; fn = e9_thick_consensus };
    { name = "E9/thick-kset"; n = 3; t = 1; depth = 0; fn = e9_thick_kset };
    { name = "E10/diameter"; n = 4; t = 1; depth = 1; fn = e10_diameter };
    { name = "E11/kset-explore"; n = 3; t = 1; depth = 2; fn = e11_kset_explore };
    { name = "E12/covering-classify"; n = 3; t = 1; depth = 3; fn = e12_covering_classify };
    { name = "E13/iis-layer"; n = 3; t = 2; depth = 1; fn = e13_iis_layer };
    { name = "E14/full-info-classify"; n = 3; t = 1; depth = 3; fn = e14_full_info_classify };
    { name = "E15/common-belief"; n = 3; t = 1; depth = 3; fn = e15_common_belief };
    { name = "E16/clean-verify"; n = 3; t = 1; depth = 3; fn = e16_clean_verify };
    { name = "E17/multi-layer"; n = 3; t = 1; depth = 1; fn = e17_multi_layer };
    { name = "E18/omission-verify"; n = 3; t = 1; depth = 7; fn = e18_omission_verify };
    { name = "ablation/valence-cold"; n = 3; t = 1; depth = 3; fn = ablation_valence_cold };
    { name = "ablation/valence-warm"; n = 3; t = 1; depth = 3; fn = ablation_valence_warm };
    { name = "ablation/growth-sync"; n = 3; t = 1; depth = 2; fn = ablation_growth_sync };
    { name = "ablation/growth-sm"; n = 3; t = 1; depth = 2; fn = ablation_growth_sm };
    { name = "ablation/growth-mp"; n = 3; t = 1; depth = 2; fn = ablation_growth_mp };
    { name = "ablation/frontier-serial"; n = 4; t = 1; depth = 2; fn = ablation_frontier_serial };
    { name = "ablation/frontier-jobs1"; n = 4; t = 1; depth = 2; fn = ablation_frontier 1 };
    { name = "ablation/frontier-jobs2"; n = 4; t = 1; depth = 2; fn = ablation_frontier 2 };
    { name = "ablation/frontier-jobs4"; n = 4; t = 1; depth = 2; fn = ablation_frontier 4 };
    { name = "ablation/e1-pool-jobs1"; n = 3; t = 1; depth = 3; fn = ablation_e1_pool 1 };
    { name = "ablation/e1-pool-jobs2"; n = 3; t = 1; depth = 3; fn = ablation_e1_pool 2 };
    { name = "ablation/e1-pool-jobs4"; n = 3; t = 1; depth = 3; fn = ablation_e1_pool 4 };
    { name = "simgraph/pairwise"; n = 4; t = 1; depth = 2; fn = simgraph_pairwise };
    { name = "simgraph/bucketed"; n = 4; t = 1; depth = 2; fn = simgraph_bucketed };
    { name = "valence/string-key"; n = 4; t = 1; depth = 4; fn = valence_string_key };
    { name = "valence/interned"; n = 4; t = 1; depth = 4; fn = valence_interned };
    { name = "checkpoint/write"; n = 4; t = 1; depth = 2; fn = checkpoint_write };
    { name = "checkpoint/restore"; n = 4; t = 1; depth = 2; fn = checkpoint_restore };
    { name = "oocore/smp6-serial"; n = 6; t = 1; depth = 2; fn = oocore_serial };
    { name = "oocore/smp6-jobs1"; n = 6; t = 1; depth = 2; fn = oocore_jobs 1 };
    { name = "oocore/smp6-jobs4"; n = 6; t = 1; depth = 2; fn = oocore_jobs 4 };
    { name = "oocore/smp6-spill-jobs4"; n = 6; t = 1; depth = 2; fn = oocore_spill };
    { name = "ablation/symmetry-off"; n = 4; t = 2; depth = 4; fn = symmetry_sweep ~sym:false };
    { name = "ablation/symmetry-on"; n = 4; t = 2; depth = 4; fn = symmetry_sweep ~sym:true };
    { name = "oocore/iis5-serial"; n = 5; t = 1; depth = 2; fn = oocore_iis ~sym:false 1 };
    { name = "oocore/iis5-jobs4"; n = 5; t = 1; depth = 2; fn = oocore_iis ~sym:false 4 };
    { name = "oocore/iis5-sym-jobs4"; n = 5; t = 1; depth = 2; fn = oocore_iis ~sym:true 4 };
    { name = "serve/cold-valence"; n = 3; t = 1; depth = 3; fn = serve_valence_cold };
    { name = "serve/warm-valence"; n = 3; t = 1; depth = 3; fn = serve_valence_warm };
    { name = "serve/warm-after-restart"; n = 3; t = 1; depth = 3; fn = serve_warm_after_restart };
    { name = "serve/saturation-seq"; n = 4; t = 1; depth = 5; fn = serve_saturation_seq };
    { name = "serve/saturation-conc"; n = 4; t = 1; depth = 5; fn = serve_saturation_conc };
    { name = "chaos/point-disabled"; n = 0; t = 0; depth = 0; fn = chaos_point_disabled };
    { name = "chaos/mangle-disabled"; n = 0; t = 0; depth = 0; fn = chaos_mangle_disabled };
  ]

let run_smoke () =
  force_fixtures ();
  List.iter
    (fun k ->
      Printf.printf "smoke %-32s%!" k.name;
      k.fn ();
      Printf.printf "  ok\n%!")
    kernels;
  Printf.printf "all %d bench kernels ran\n" (List.length kernels)

(* One run per kernel, wall clock and states-expanded delta, as a JSON
   array on stdout.  Deliberately no Bechamel: the point is a cheap
   machine-readable snapshot (e.g. for CI trend lines), not a rigorous
   estimate. *)
let run_json () =
  force_fixtures ();
  print_string "[";
  (* Header element: run-wide metadata.  Deliberately has no "kernel"
     key — the sed/awk consumers (scripts/bench_compare.sh, the CI
     gates) match per-kernel lines on "kernel" and skip this row. *)
  Printf.printf "\n  {\"meta\": {\"cores\": %d, \"pool_jobs\": [%s]}}"
    (Domain.recommended_domain_count ())
    (String.concat ", " (List.map string_of_int pool_jobs));
  List.iter
    (fun k ->
      print_string ",";
      Stats.reset ();
      Atomic.set last_ckpt_bytes 0;
      (* Settle the previous kernel's garbage so single-shot wall times
         compare across adjacent kernels instead of charging one kernel
         with its predecessor's major-GC debt. *)
      Gc.compact ();
      let t0 = Unix.gettimeofday () in
      k.fn ();
      let t1 = Unix.gettimeofday () in
      let s = Stats.snapshot () in
      Printf.printf
        "\n  {\"kernel\": %S, \"n\": %d, \"t\": %d, \"depth\": %d, \"wall_ns\": %.0f, \
         \"states\": %d, \"bytes\": %d, \"statevec\": %d, \"arena_bytes\": %d, \
         \"orbit_hits\": %d}"
        k.name k.n k.t k.depth
        ((t1 -. t0) *. 1e9)
        s.Stats.states_expanded
        (Atomic.get last_ckpt_bytes)
        s.Stats.statevec_states s.Stats.arena_bytes s.Stats.orbit_hits)
    kernels;
  print_string "\n]\n"

let run_bechamel () =
  force_fixtures ();
  let tests = List.map (fun k -> Test.make ~name:k.name (Staged.stage k.fn)) kernels in
  let grouped = Test.make_grouped ~name:"layered" tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  Format.printf "%-32s  %14s@." "benchmark" "ns/run";
  Format.printf "%-32s  %14s@." (String.make 32 '-') (String.make 14 '-');
  List.iter
    (fun (name, ns) -> Format.printf "%-32s  %14.1f@." name ns)
    rows

let () =
  let has flag = Array.exists (String.equal flag) Sys.argv in
  let finally () =
    shutdown_pools ();
    cleanup_ckpt_dirs ()
  in
  Fun.protect ~finally (fun () ->
      if has "--smoke" then run_smoke ()
      else if has "--json" then run_json ()
      else run_bechamel ())
